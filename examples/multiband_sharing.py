"""Frequency-division multiplexing on a wideband surface (Scrolls-style).

Two networks — 2.4 GHz and 5 GHz Wi-Fi — share one rolling wideband
surface whose rows tune to distinct resonant bands (the paper's Table 1
"Scrolls" design, row-wise frequency control).  SurfOS allocates rows
across the two networks; a row helps a network only while tuned to its
band, so the row allocation is a literal frequency-axis resource slice
(§3.2's frequency division multiplexing).

Sub-6 GHz penetrates the apartment's walls, so the direct path already
covers the bedroom; the surface's value is at the *shadowed tail* of
the room — we report each network's 90th-percentile per-point gain and
the fraction of locations improved by ≥3 dB.

Run with::

    python examples/multiband_sharing.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.channel import ChannelSimulator, ula_node
from repro.core.units import ghz
from repro.drivers import FrequencySelectiveDriver
from repro.em import LinkBudget
from repro.geometry import apartment_sites, two_room_apartment
from repro.services import snr_map_db
from repro.surfaces import CATALOG, SurfacePanel

BANDS = [(ghz(2.3), ghz(2.5)), (ghz(4.9), ghz(5.1))]
CARRIERS = {"2.4GHz-net": ghz(2.4), "5GHz-net": ghz(5.0)}


def gain_stats(model, panel, driver, carrier, budget):
    """(p90 gain, fraction ≥3 dB) of the surface's per-point SNR gain."""
    baseline = snr_map_db(
        model, {panel.panel_id: np.zeros(panel.num_elements)}, budget
    )
    x = driver.effective_configuration(carrier).coefficients().reshape(-1)
    with_rows = snr_map_db(model, {panel.panel_id: x}, budget)
    gains = with_rows - baseline
    return float(np.percentile(gains, 90)), float(np.mean(gains >= 3.0))


def main() -> None:
    env = two_room_apartment()
    sites = apartment_sites()
    budget = LinkBudget(tx_power_dbm=17.0, bandwidth_hz=40e6)
    points = env.room("bedroom").grid(0.6, z=1.0)

    panel = SurfacePanel(
        "scrolls",
        CATALOG["Scrolls"].spec,
        24,
        24,
        sites.single_surface_center,
        sites.single_surface_normal,
    )
    driver = FrequencySelectiveDriver(panel, bands_hz=BANDS)

    models = {}
    for name, carrier in CARRIERS.items():
        ap = ula_node(
            f"ap-{name}", sites.ap_position, 2, carrier, (0, 0, 1), (1, 0.3, 0)
        )
        models[name] = ChannelSimulator(env, carrier).build(ap, points, [panel])

    scenarios = {
        "all rows → 2.4 GHz": {0: 1.0},
        "all rows → 5 GHz": {1: 1.0},
        "shared 50/50": {0: 1.0, 1: 1.0},
        "demand-weighted 1:3 (video on 5 GHz)": {0: 1.0, 1: 3.0},
    }

    rows = []
    for label, demands in scenarios.items():
        allocation = driver.allocate_rows(demands)
        cells = [label, f"{allocation.get(0, 0)}/{allocation.get(1, 0)}"]
        for name, carrier in CARRIERS.items():
            p90, frac = gain_stats(
                models[name], panel, driver, carrier, budget
            )
            cells.append(f"+{p90:.1f} dB / {frac * 100:.0f}%")
        rows.append(tuple(cells))

    print(
        render_table(
            (
                "row allocation",
                "rows 2.4/5",
                "2.4 GHz gain (p90 / ≥3dB)",
                "5 GHz gain (p90 / ≥3dB)",
            ),
            rows,
            title="Frequency-division multiplexing on one wideband surface",
        )
    )
    print(
        "\nRows tuned to a network's band lift its shadowed locations; "
        "rows tuned away contribute only off-resonance leakage. The "
        "allocation is the scheduler's frequency-axis slice."
    )


if __name__ == "__main__":
    main()
