"""Why an OS and not a library: runtime adaptation to a changing world.

The paper's §5 argument, executable: a person walks through the serving
beam; the SurfOS daemon detects the degradation through its channel
monitor and re-optimizes the surfaces, restoring coverage.  A
compile-time library would have kept serving the stale configuration.

Run with::

    python examples/adaptive_runtime.py
"""

import numpy as np

from repro import SurfOS, ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import Adam
from repro.runtime import Walker
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel


def main() -> None:
    env = two_room_apartment()
    sites = apartment_sites()
    frequency = ghz(28)
    system = SurfOS(
        env,
        frequency_hz=frequency,
        optimizer=Adam(max_iterations=70),
        grid_spacing_m=0.9,
    )
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, frequency, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "wall-panel",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    system.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    system.boot(observe_room="bedroom")

    system.orchestrator.optimize_coverage("bedroom")
    system.reoptimize()
    baseline = np.median(system.daemon.observe())
    print(f"steady state: median bedroom SNR {baseline:.1f} dB")

    print("\na person starts pacing through the beam corridor …")
    system.dynamics.add_walker(
        Walker("person", [(5.6, 3.2), (8.0, 1.0)], speed_mps=1.5)
    )

    for step in range(12):
        record = system.daemon.step(dt=0.5)
        snr = np.median(system.daemon.monitor.history[-1].snrs_db)
        line = f"t={system.daemon.clock.now:4.1f}s  median SNR {snr:5.1f} dB"
        if record is not None:
            line += (
                f"   ← daemon re-optimized (latency "
                f"{record.reaction_latency_s * 1e3:.2f} ms, "
                f"{record.median_snr_before_db:.1f} → "
                f"{record.median_snr_after_db:.1f} dB)"
            )
        print(line)

    # Every reaction also landed in the telemetry event log, alongside
    # the span timings for each reoptimize pass.
    anomalies = len(system.daemon.monitor.anomalies)
    reactions = system.telemetry.get_counter("daemon.reactions")
    print(
        f"\n{anomalies} degradations detected, {reactions} re-optimizations "
        "fired — the runtime kept the room served while the world moved."
    )
    print()
    print(system.telemetry.summary())


if __name__ == "__main__":
    main()
