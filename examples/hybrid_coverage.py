"""Hybrid heterogeneous deployment: passive backhaul + dynamic steering.

The paper's Figure 4 scenario as a runnable script: compare flooding
the target room with a passive sheet, steering with an expensive
programmable panel, and the hybrid that relays a focused backhaul beam
onto a small programmable panel.

Run with::

    python examples/hybrid_coverage.py
"""

from repro.experiments import fig4


def main() -> None:
    result = fig4.run(
        passive_sizes=(24, 48, 100),
        programmable_sizes=(12, 22, 30),
        hybrid_sizes=((64, 12), (80, 16)),
    )
    print(result.render_sweep())
    print()
    print(result.render_targets())
    print()
    # Show the spatial story: the hybrid's steered beam vs the passive
    # flood.
    print(result.heatmaps["passive-only-48"].render(
        title="passive-only 48x48 — static flood through the doorway (SNR dB)"
    ))
    print()
    print(result.heatmaps["hybrid-80x16"].render(
        title="hybrid 80x80 passive + 16x16 programmable — steered (SNR dB)"
    ))

    target = 25.0
    hybrid = result.cheapest_reaching("hybrid", target)
    prog = result.cheapest_reaching("programmable-only", target)
    if hybrid and prog:
        print(
            f"\nTo reach {target:.0f} dB median SNR: hybrid costs "
            f"${hybrid.cost_usd:,.0f} vs programmable-only "
            f"${prog.cost_usd:,.0f} "
            f"({prog.cost_usd / hybrid.cost_usd:.1f}x more)."
        )


if __name__ == "__main__":
    main()
