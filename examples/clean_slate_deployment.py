"""Clean-slate automation: goal → design → placement → tenants.

The paper's §5 future-work stages, end to end:

1. a natural-language hardware request is parsed against the design
   database ("LLMs can locate an appropriate design from a surface
   design database"),
2. the deployment planner compiles the coverage goal into ranked
   (design, site, size) plans by simulating candidate placements,
3. the winning plan is installed and SurfOS boots on it,
4. the environment is virtualized between two tenants with isolated
   budgets, and both are served by one joint optimization.

Run with::

    python examples/clean_slate_deployment.py
"""

from repro import SurfOS, ghz
from repro.autodesign import DeploymentGoal, DeploymentPlanner
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.llm import recommend_designs
from repro.orchestrator import Adam
from repro.orchestrator.virtualization import Hypervisor, TenantPolicy
from repro.surfaces import SurfacePanel

FREQUENCY = ghz(28)


def main() -> None:
    env = two_room_apartment()
    sites = apartment_sites()
    ap = AccessPoint(
        "ap", sites.ap_position, 4, FREQUENCY, boresight=(1, 0.3, 0)
    )

    # 1. Hardware request → design database.
    request = "a steerable phase surface for 28 GHz coverage"
    print(f"hardware request: {request!r}")
    for spec in recommend_designs(request):
        print(
            f"  candidate: {spec.design} "
            f"(${spec.cost_per_element_usd:.2f}/element)"
        )

    # 2. Coverage goal → ranked deployment plans.
    planner = DeploymentPlanner(
        env,
        ap,
        optimizer=Adam(max_iterations=60),
        size_ladder=(8, 12, 16, 24),
        max_sites=4,
        grid_spacing_m=0.9,
    )
    goal = DeploymentGoal(
        room_id="bedroom",
        target_median_snr_db=20.0,
        frequency_hz=FREQUENCY,
        require_reconfigurable=True,
    )
    plans = planner.plan(goal)
    print("\ndeployment plans (best first):")
    for i, plan in enumerate(plans, 1):
        print(f"  {i}. {plan.describe()}")
    chosen = plans[0]

    # 3. Install the winning plan and boot SurfOS on it.
    system = SurfOS(
        env,
        frequency_hz=FREQUENCY,
        optimizer=Adam(max_iterations=60),
        grid_spacing_m=0.9,
    )
    system.add_access_point(ap)
    system.add_surface(
        SurfacePanel(
            "planned",
            chosen.spec,
            chosen.side_elements,
            chosen.side_elements,
            chosen.site.center,
            chosen.site.normal,
        )
    )
    system.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    system.add_client(ClientDevice("sensor-hub", (7.5, 3.0, 1.0)))
    system.boot()
    print(f"\ninstalled: {chosen.describe()}")

    # 4. Virtualize between two tenants and serve both.
    hypervisor = Hypervisor(system.orchestrator)
    home = hypervisor.create_tenant(
        TenantPolicy(
            "homeowner", allowed_rooms=("bedroom",), max_priority=7,
            time_budget=0.6,
        )
    )
    iot = hypervisor.create_tenant(
        TenantPolicy("iot-operator", max_priority=4, time_budget=0.4)
    )
    home.optimize_coverage("bedroom", median_snr=20.0, time_fraction=0.6)
    iot.enhance_link("sensor-hub", snr=15.0, time_fraction=0.4)
    system.reoptimize()

    print("\ntenant usage after one joint optimization:")
    for name, usage in hypervisor.usage_report().items():
        print(f"  {name}: {usage}")
    for name in ("homeowner", "iot-operator"):
        for task in hypervisor.tenant(name).tasks():
            print(
                f"  {name}/{task.service.value}: {task.state.value}, "
                f"median SNR {task.metrics.get('median_snr_db', float('nan')):.1f} dB"
            )


if __name__ == "__main__":
    main()
