"""Quickstart: boot SurfOS, request services, inspect results.

Run with::

    python examples/quickstart.py
"""

from repro import SurfOS, ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel


def main() -> None:
    # 1. The radio environment: a two-room apartment whose concrete
    #    partition blocks mmWave into the bedroom.
    env = two_room_apartment()
    sites = apartment_sites()
    frequency = ghz(28)

    # 2. SurfOS manages the hardware: one AP, one programmable surface
    #    on the bedroom wall, and the user's devices.
    system = SurfOS(env, frequency_hz=frequency, grid_spacing_m=0.8)
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, frequency, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "wall-panel",
            GENERIC_PROGRAMMABLE_28,
            20,
            20,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    system.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    system.boot()
    print(system.summary())

    # 3. Request services through the orchestrator's high-level APIs —
    #    no surface ids anywhere; SurfOS decides which hardware serves.
    coverage = system.orchestrator.optimize_coverage("bedroom", median_snr=20.0)
    link = system.orchestrator.enhance_link("phone", snr=25.0)

    # 4. One joint optimization serves both tasks with a single shared
    #    configuration (configuration multiplexing).  The result carries
    #    per-phase timings from the built-in telemetry.
    result = system.reoptimize()

    print(f"\ncoverage task:  {coverage.state.value}  metrics={coverage.metrics}")
    print(f"link task:      {link.state.value}  metrics={link.metrics}")
    for phase, seconds in result.timing.items():
        print(f"  {phase:>18}: {seconds * 1e3:8.2f} ms")

    # 5. The hardware manager shows what actually hit the hardware.
    for surface_id, config in system.hardware.snapshot().items():
        print(
            f"\nsurface {surface_id!r}: live configuration "
            f"{config.shape[0]}x{config.shape[1]} ({config.name})"
        )

    # 6. The telemetry subsystem saw every layer do its work.
    print()
    print(system.telemetry.summary())


if __name__ == "__main__":
    main()
