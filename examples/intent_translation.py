"""User-demand translation end to end: language → services → surfaces.

The paper's Figure 6 flow, but carried all the way through: natural-
language demands are translated into validated service calls and then
*executed* against a booted SurfOS deployment, driving real surface
optimization.

Run with::

    python examples/intent_translation.py
"""

from repro import SurfOS, ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.llm import build_prompt
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

DEMANDS = [
    "I want to start VR gaming in this room.",
    "I want to have an online meeting while charging my phone.",
]


def main() -> None:
    env = two_room_apartment()
    sites = apartment_sites()
    frequency = ghz(28)
    system = SurfOS(env, frequency_hz=frequency, grid_spacing_m=0.9)
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, frequency, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "wall-panel",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    # The devices the demands will reference.
    system.add_client(ClientDevice("VR_headset", (6.2, 2.2, 1.2)))
    system.add_client(ClientDevice("laptop", (7.0, 1.2, 0.8)))
    system.add_client(ClientDevice("phone", (6.8, 2.8, 0.9)))
    system.boot()

    # The bedroom is the room the demands refer to; register an alias
    # so 'room_id' from the prompt context resolves.
    room_alias = "bedroom"

    print("System prompt sent to the LLM:")
    print("-" * 60)
    print(build_prompt("<user demand here>"))
    print("-" * 60)

    for demand in DEMANDS:
        print(f"\nUser Input: {demand}")
        calls = system.translate_only(demand)
        tasks = []
        for call in calls:
            # 'room_id'/'this room' in the model output maps to the
            # room the user is in.
            args = dict(call.arguments)
            if args.get("room_id") in ("room_id", "this room"):
                args["room_id"] = room_alias
            from repro.broker import ServiceCall
            from repro.llm import dispatch_calls

            fixed = ServiceCall(call.function, args)
            print(f"  {fixed.render()}")
            tasks.extend(dispatch_calls([fixed], system.orchestrator))
        system.reoptimize()
        for task in tasks:
            print(
                f"    → {task.service.value} task {task.state.value}, "
                f"metrics: { {k: round(v, 1) for k, v in task.metrics.items()} }"
            )
            system.orchestrator.complete_task(task.task_id)


if __name__ == "__main__":
    main()
