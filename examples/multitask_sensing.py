"""Surface multitasking: one configuration, two services.

The paper's Figure 5 study as a runnable script: a single shared
surface configuration jointly optimized for coverage *and* AoA-based
localization, compared against single-task specialists.

Run with::

    python examples/multitask_sensing.py
"""

from repro.analysis.cdf import summarize
from repro.experiments import fig5


def main() -> None:
    result = fig5.run()
    print(result.render())

    errs = summarize(result.error_cdfs)
    snrs = summarize(result.snr_cdfs)
    mt_err = errs["Multi-tasking"]["p50"]
    mt_snr = snrs["Multi-tasking"]["p50"]
    cov_snr = snrs["Coverage Opt"]["p50"]
    loc_err = errs["Localization Opt"]["p50"]

    print(
        "\nTakeaway: the multitask configuration localizes within "
        f"{mt_err:.2f} m (specialist: {loc_err:.2f} m) while giving up "
        f"only {cov_snr - mt_snr:.1f} dB of median SNR vs the coverage "
        "specialist — one surface, both services, no time slicing."
    )


if __name__ == "__main__":
    main()
