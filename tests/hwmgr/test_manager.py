"""Hardware manager: registry, unified ops, feedback routing."""

import numpy as np
import pytest

from repro.core import SurfaceConfiguration, UnknownDeviceError
from repro.core.units import ghz
from repro.drivers import (
    AmplitudeDriver,
    FeedbackReport,
    PassivePhaseDriver,
    ProgrammablePhaseDriver,
)
from repro.geometry import vec3
from repro.hwmgr import (
    AccessPoint,
    ClientDevice,
    HardwareManager,
    Sensor,
    driver_for_panel,
)
from repro.surfaces import (
    CATALOG,
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    SurfacePanel,
)


def make_panel(pid="s1", spec=GENERIC_PROGRAMMABLE_28, rows=4, cols=4):
    return SurfacePanel(pid, spec, rows, cols, vec3(0, 0, 1.5), vec3(0, -1, 0))


@pytest.fixture()
def manager():
    return HardwareManager()


class TestDriverFactory:
    def test_programmable_phase(self):
        drv = driver_for_panel(make_panel())
        assert isinstance(drv, ProgrammablePhaseDriver)

    def test_passive_phase(self):
        drv = driver_for_panel(make_panel(spec=GENERIC_PASSIVE_28))
        assert isinstance(drv, PassivePhaseDriver)

    def test_amplitude_surface(self):
        panel = make_panel(spec=CATALOG["RFocus"].spec)
        assert isinstance(driver_for_panel(panel), AmplitudeDriver)

    def test_catalog_designs_all_get_drivers(self):
        for name, entry in CATALOG.items():
            panel = make_panel(pid=name, spec=entry.spec)
            assert driver_for_panel(panel) is not None


class TestRegistry:
    def test_register_and_lookup(self, manager):
        panel = make_panel()
        drv = manager.register_surface(panel)
        assert manager.driver("s1") is drv
        assert manager.panel("s1") is panel
        assert manager.surface_ids() == ["s1"]

    def test_duplicate_surface_rejected(self, manager):
        manager.register_surface(make_panel())
        with pytest.raises(UnknownDeviceError):
            manager.register_surface(make_panel())

    def test_unknown_surface_rejected(self, manager):
        with pytest.raises(UnknownDeviceError):
            manager.driver("ghost")

    def test_unregister(self, manager):
        manager.register_surface(make_panel())
        manager.unregister_surface("s1")
        assert manager.surface_ids() == []
        with pytest.raises(UnknownDeviceError):
            manager.unregister_surface("s1")

    def test_unregister_is_symmetric_for_every_device_kind(self, manager):
        manager.register_access_point(AccessPoint("ap1", vec3(0, 0, 2), 4, ghz(28)))
        manager.register_client(ClientDevice("phone", vec3(3, 1, 1)))
        manager.register_sensor(
            Sensor("pd1", vec3(1, 1, 1), "power", read=lambda: -40.0)
        )
        manager.unregister_access_point("ap1")
        manager.unregister_client("phone")
        manager.unregister_sensor("pd1")
        assert manager.access_points() == []
        assert manager.clients() == []
        with pytest.raises(UnknownDeviceError):
            manager.unregister_access_point("ap1")
        with pytest.raises(UnknownDeviceError):
            manager.unregister_client("phone")
        with pytest.raises(UnknownDeviceError):
            manager.unregister_sensor("pd1")

    def test_non_surface_devices(self, manager):
        ap = AccessPoint("ap1", vec3(0, 0, 2), 4, ghz(28))
        client = ClientDevice("phone", vec3(3, 1, 1))
        sensor = Sensor("pd1", vec3(1, 1, 1), "power", read=lambda: -40.0)
        manager.register_access_point(ap)
        manager.register_client(client)
        manager.register_sensor(sensor)
        assert manager.access_point("ap1") is ap
        assert manager.client("phone") is client
        assert manager.sensor("pd1").measure() == -40.0
        with pytest.raises(UnknownDeviceError):
            manager.register_access_point(ap)
        with pytest.raises(UnknownDeviceError):
            manager.register_client(client)
        with pytest.raises(UnknownDeviceError):
            manager.register_sensor(sensor)
        with pytest.raises(UnknownDeviceError):
            manager.access_point("nope")
        with pytest.raises(UnknownDeviceError):
            manager.client("nope")
        with pytest.raises(UnknownDeviceError):
            manager.sensor("nope")


class TestUnifiedOps:
    def test_specifications_table(self, manager):
        manager.register_surface(make_panel("a"))
        manager.register_surface(make_panel("b", spec=GENERIC_PASSIVE_28))
        specs = manager.specifications()
        assert specs["a"].reconfigurable
        assert specs["b"].is_passive

    def test_push_and_commit(self, manager):
        manager.register_surface(make_panel())
        rng = np.random.default_rng(0)
        cfg = SurfaceConfiguration.random(4, 4, rng=rng)
        ready = manager.push_configuration("s1", cfg, now=0.0).ready_at
        assert manager.pending_total() == 1
        applied = manager.commit_all(now=ready).applied
        assert applied == 1
        assert manager.pending_total() == 0
        snap = manager.snapshot()
        assert snap["s1"].shape == (4, 4)

    def test_feedback_routing(self, manager):
        manager.register_surface(make_panel())
        rng = np.random.default_rng(1)
        for name in ("a", "b"):
            manager.push_configuration(
                "s1",
                SurfaceConfiguration.random(4, 4, rng=rng),
                now=0.0,
                name=name,
                activate=False,
            )
        manager.commit_all(now=1.0)
        chosen = manager.route_feedback(
            "s1", FeedbackReport("phone", {"a": 5.0, "b": 9.0})
        )
        assert chosen == "b"

    def test_summary(self, manager):
        manager.register_surface(make_panel())
        assert "1 surfaces" in manager.summary()


class TestDevices:
    def test_ap_node_matches_antennas(self):
        ap = AccessPoint("ap1", vec3(0, 0, 2), 8, ghz(28))
        node = ap.node()
        assert node.num_antennas == 8
        assert np.allclose(node.centroid, [0, 0, 2], atol=1e-9)

    def test_ap_validation(self):
        with pytest.raises(ValueError):
            AccessPoint("ap1", vec3(0, 0, 2), 0, ghz(28))
        with pytest.raises(ValueError):
            AccessPoint("ap1", vec3(0, 0, 2), 4, 0.0)

    def test_client_move(self):
        c = ClientDevice("phone", vec3(1, 1, 1))
        c.move_to((2, 2, 1))
        assert np.allclose(c.position, [2, 2, 1])
        assert c.node().positions.shape == (1, 3)
