"""Broker + kernel + daemon integration on the apartment scenario."""

import numpy as np
import pytest

from repro import SurfOS, SurfOSError, ghz
from repro.broker import HandleStatus
from repro.core.errors import ServiceError
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import Adam, TaskState
from repro.runtime import Walker
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


@pytest.fixture()
def system():
    env = two_room_apartment()
    sites = apartment_sites()
    os_ = SurfOS(
        env,
        frequency_hz=FREQ,
        optimizer=Adam(max_iterations=50),
        grid_spacing_m=1.0,
    )
    os_.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    os_.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    os_.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    os_.add_client(ClientDevice("headset", (6.0, 2.5, 1.0)))
    return os_.boot(observe_room="bedroom")


class TestKernel:
    def test_boot_once(self, system):
        with pytest.raises(SurfOSError):
            system.boot()

    def test_services_require_boot(self):
        env = two_room_apartment()
        os_ = SurfOS(env, frequency_hz=FREQ)
        with pytest.raises(SurfOSError):
            os_.handle_user_demand("hello")

    def test_summary(self, system):
        assert "booted" in system.summary()

    def test_user_demand_end_to_end(self, system):
        tasks = system.handle_user_demand(
            "I want to watch a movie on my phone"
        )
        assert len(tasks) == 1
        assert tasks[0].goal["client"] == "phone"
        system.reoptimize()
        assert tasks[0].state is TaskState.RUNNING
        assert tasks[0].metrics["median_snr_db"] > 10.0


class TestBroker:
    def test_application_served_and_reported(self, system):
        served = system.serve_application("video_streaming", "phone", "bedroom")
        assert served.status is HandleStatus.ADMITTED
        system.reoptimize()
        report = system.broker.satisfaction(served)
        assert "achieved_snr_db" in report
        assert report["achieved_snr_db"] > -40

    def test_vr_app_spawns_link_and_sensing(self, system):
        served = system.serve_application("vr_gaming", "headset", "bedroom")
        tasks = [
            system.orchestrator.scheduler.task(tid)
            for tid in served.task_ids
        ]
        services = {t.service.value for t in tasks}
        assert {"link", "sensing"} <= services
        system.reoptimize()
        report = system.broker.satisfaction(served)
        assert report["sensing_active"]

    def test_duplicate_registration_rejected(self, system):
        system.serve_application("video_streaming", "phone", "bedroom")
        with pytest.raises(ServiceError):
            system.serve_application("video_streaming", "phone", "bedroom")

    def test_stop_application(self, system):
        served = system.serve_application("video_streaming", "phone", "bedroom")
        system.broker.stop_application("video_streaming", "phone")
        assert served.status is HandleStatus.STOPPED
        with pytest.raises(ServiceError):
            system.broker.stop_application("ghost_app", "phone")

    def test_stop_with_terminal_tasks_still_deactivates(self, system):
        # Regression: when every task already completed (e.g. it
        # expired), stop_application must still mark the record
        # inactive rather than leaving it stuck active forever.
        served = system.serve_application("video_streaming", "phone", "bedroom")
        for task_id in served.task_ids:
            system.orchestrator.complete_task(task_id)
        tasks = [
            system.orchestrator.scheduler.task(tid)
            for tid in served.task_ids
        ]
        assert all(t.is_terminal for t in tasks)
        system.broker.stop_application("video_streaming", "phone")
        assert served.status is HandleStatus.STOPPED

    def test_reregistration_after_stop(self, system):
        first = system.serve_application("video_streaming", "phone", "bedroom")
        system.broker.stop_application("video_streaming", "phone")
        second = system.serve_application("video_streaming", "phone", "bedroom")
        assert second is not first
        assert second.status is HandleStatus.ADMITTED
        assert second in system.broker.applications()
        assert first not in system.broker.applications()

    def test_unsatisfied_detection(self, system):
        # Demand an absurd throughput: link requirement cannot be met.
        served = system.serve_application(
            "file_transfer", "phone", "bedroom", throughput_mbps=40_000.0
        )
        system.reoptimize()
        assert served in system.broker.unsatisfied()


class TestHandleAPI:
    """The redesigned broker surface: handles in, typed responses out."""

    def test_register_returns_service_handle(self, system):
        from repro.broker import HandleStatus, ServiceHandle

        handle = system.serve_application("video_streaming", "phone", "bedroom")
        assert isinstance(handle, ServiceHandle)
        assert handle.key == "video_streaming@phone"
        assert handle.status is HandleStatus.ADMITTED
        system.reoptimize()
        assert handle.status is HandleStatus.RUNNING
        assert handle.satisfaction()["app"] == "video_streaming"

    def test_stop_returns_typed_response(self, system):
        from repro.broker import RequestStatus, ServiceResponse

        system.serve_application("video_streaming", "phone", "bedroom")
        response = system.broker.stop_application("video_streaming", "phone")
        assert isinstance(response, ServiceResponse)
        assert response.status is RequestStatus.STOPPED
        assert response.ok

    def test_legacy_attribute_shim_is_gone(self, system):
        # The PR-4 duck-type shim (handle.active/.demand/.tasks/...)
        # has been retired: legacy reads now fail loudly.
        handle = system.serve_application("video_streaming", "phone", "bedroom")
        for name in ("demand", "calls", "tasks", "active", "stopped"):
            with pytest.raises(AttributeError):
                getattr(handle, name)


class TestDaemon:
    def test_daemon_reacts_to_blockage(self, system):
        system.orchestrator.optimize_coverage("bedroom")
        system.reoptimize()
        # A person walking straight through the bedroom beam corridor.
        system.dynamics.add_walker(
            Walker("person", [(5.6, 3.2), (8.0, 1.0)], speed_mps=1.5)
        )
        records = system.daemon.run(steps=10, dt=0.5)
        # The monitor must have seen degradations and re-optimized.
        assert system.daemon.monitor.anomalies
        assert records, "daemon never re-optimized despite blockage"
        assert records[0].reaction_latency_s >= 0.0

    def test_daemon_quiet_without_dynamics(self, system):
        system.orchestrator.optimize_coverage("bedroom")
        system.reoptimize()
        records = system.daemon.run(steps=5, dt=0.5)
        assert records == []
        assert system.daemon.monitor.anomalies == []
