"""End-to-end orchestrator flows on the apartment scenario."""

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.core.units import ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice, HardwareManager
from repro.orchestrator import (
    Adam,
    MultiplexStrategy,
    SurfaceOrchestrator,
    TaskState,
)
from repro.surfaces import (
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    SurfacePanel,
)

FREQ = ghz(28)


@pytest.fixture()
def deployment():
    env = two_room_apartment()
    sites = apartment_sites()
    hw = HardwareManager()
    hw.register_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    hw.register_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    hw.register_client(ClientDevice("headset", (6.0, 2.5, 1.0)))
    hw.register_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    orch = SurfaceOrchestrator(
        env,
        hw,
        FREQ,
        optimizer=Adam(max_iterations=60),
        grid_spacing_m=1.0,
    )
    return env, hw, orch


class TestServiceAPIs:
    def test_coverage_task_lifecycle(self, deployment):
        _, _, orch = deployment
        task = orch.optimize_coverage("bedroom", median_snr=20.0)
        assert task.state is TaskState.READY
        orch.reoptimize()
        assert task.state is TaskState.RUNNING
        assert "median_snr_db" in task.metrics

    def test_enhance_link_improves_client_snr(self, deployment):
        _, _, orch = deployment
        task = orch.enhance_link("phone", snr=25.0)
        before = orch.evaluate_task(task.task_id)["median_snr_db"]
        orch.reoptimize()
        after = orch.evaluate_task(task.task_id)["median_snr_db"]
        assert after > before + 3.0

    def test_multiple_tasks_coexist_via_joint_multiplexing(self, deployment):
        _, _, orch = deployment
        t1 = orch.optimize_coverage("bedroom")
        t2 = orch.enhance_link("phone", snr=25.0)
        t3 = orch.enable_sensing("bedroom")
        orch.reoptimize()
        for t in (t1, t2, t3):
            assert t.state is TaskState.RUNNING
        groups = orch.scheduler.shared_groups()
        assert len(groups["joint"]) == 3

    def test_powering_task(self, deployment):
        _, _, orch = deployment
        task = orch.init_powering("phone", duration=100.0)
        orch.reoptimize()
        assert task.metrics["median_snr_db"] > -40

    def test_security_task_records_secrecy(self, deployment):
        _, _, orch = deployment
        task = orch.protect_link("phone", eavesdropper_position=(7.5, 0.8, 1.0))
        orch.reoptimize()
        assert "secrecy_margin_db" in task.metrics
        assert task.metrics["secrecy_margin_db"] > 10.0

    def test_reoptimize_without_tasks_rejected(self, deployment):
        _, _, orch = deployment
        with pytest.raises(ServiceError):
            orch.reoptimize()

    def test_unknown_client_rejected(self, deployment):
        _, _, orch = deployment
        from repro.core.errors import UnknownDeviceError

        with pytest.raises(UnknownDeviceError):
            orch.enhance_link("ghost")

    def test_task_expiry_via_tick(self, deployment):
        _, _, orch = deployment
        task = orch.enable_sensing("bedroom", duration=10.0)
        orch.reoptimize()
        finished = orch.tick(now=orch.clock_now + 11.0)
        assert task.task_id in finished
        assert task.state is TaskState.COMPLETED


class TestPassiveFabrication:
    def test_passive_surface_fabricated_once(self):
        env = two_room_apartment()
        sites = apartment_sites()
        hw = HardwareManager()
        hw.register_access_point(
            AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
        )
        passive = SurfacePanel(
            "pas",
            GENERIC_PASSIVE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
        hw.register_surface(passive)
        orch = SurfaceOrchestrator(
            env, hw, FREQ, optimizer=Adam(max_iterations=40), grid_spacing_m=1.0
        )
        orch.optimize_coverage("bedroom")
        orch.reoptimize()
        driver = hw.driver("pas")
        assert driver.fabricated
        # Second reoptimize must fail: nothing left to optimize.
        with pytest.raises(ServiceError):
            orch.reoptimize()


class TestControlDelayAccounting:
    def test_clock_advances_by_control_delay(self, deployment):
        _, hw, orch = deployment
        orch.optimize_coverage("bedroom")
        t0 = orch.clock_now
        orch.reoptimize()
        assert orch.clock_now >= t0 + GENERIC_PROGRAMMABLE_28.control_delay_s
        assert hw.pending_total() == 0  # everything committed
