"""Telemetry across the full stack: one reoptimize, every layer reports."""

import pytest

from repro import SurfOS, ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import Adam, MultiplexStrategy, ReoptimizationResult
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel
from repro.telemetry import Telemetry, load_jsonl, render_report

FREQ = ghz(28)


def build_system(**kernel_kwargs):
    env = two_room_apartment()
    sites = apartment_sites()
    system = SurfOS(
        env,
        frequency_hz=FREQ,
        optimizer=Adam(max_iterations=40),
        grid_spacing_m=1.0,
        **kernel_kwargs,
    )
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    system.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    system.add_client(ClientDevice("VR_headset", (6.0, 2.5, 1.0)))
    return system.boot()


@pytest.fixture()
def system():
    return build_system()


class TestReoptimizeTracing:
    def test_one_pass_produces_distinct_phase_spans(self, system, tmp_path):
        system.orchestrator.optimize_coverage("bedroom")
        system.orchestrator.enhance_link("phone", snr=25.0)
        result = system.reoptimize()

        spans = system.telemetry.snapshot().spans
        for path in (
            "reoptimize",
            "reoptimize/channel-build",
            "reoptimize/optimize/optimize-panel",
            "reoptimize/push",
        ):
            assert path in spans, f"missing span {path}"
            assert spans[path].wall_total_s > 0.0

        # The phases are distinct measurements, not one number repeated.
        assert (
            spans["reoptimize/channel-build"].wall_total_s
            != spans["reoptimize/push"].wall_total_s
        )
        assert result.timing["total_s"] >= result.timing["channel_build_s"]

        # …and the whole log exports and renders back.
        path = str(tmp_path / "trace.jsonl")
        system.telemetry.export_jsonl(path)
        report = render_report(load_jsonl(path))
        assert "reoptimize/channel-build" in report
        assert "reoptimize/push" in report

    def test_counters_cover_every_layer(self, system):
        system.orchestrator.optimize_coverage("bedroom")
        system.reoptimize()
        counters = system.telemetry.counters
        assert counters["orchestrator.reoptimizations"] == 1
        assert counters["orchestrator.objective_evaluations"] > 0
        assert counters["channel.cache_misses"] >= 1
        assert counters["hw.pushes"] >= 1

    def test_all_layers_share_one_instance(self, system):
        assert system.orchestrator.telemetry is system.telemetry
        assert system.orchestrator.simulator.telemetry is system.telemetry
        assert system.hardware.telemetry is system.telemetry
        assert system.daemon.telemetry is system.telemetry
        assert system.broker.telemetry is system.telemetry

    def test_spans_carry_simulated_settle_time(self, system):
        system.orchestrator.optimize_coverage("bedroom")
        result = system.reoptimize()
        assert result.settle_s == pytest.approx(
            GENERIC_PROGRAMMABLE_28.control_delay_s
        )
        push = system.telemetry.snapshot().spans["reoptimize/push"]
        assert push.sim_total_s == pytest.approx(result.settle_s)


class TestDisabledTelemetry:
    def test_disabled_telemetry_yields_no_events_and_empty_timing(self):
        system = build_system(telemetry=Telemetry(enabled=False))
        system.orchestrator.optimize_coverage("bedroom")
        result = system.reoptimize()
        assert result.timing == {}
        snap = system.telemetry.snapshot()
        assert snap.spans == {} and snap.counters == {}
        # The pass itself still works end to end.
        assert "s1" in result


class TestReoptimizationResult:
    def test_mapping_compat_with_old_dict_return(self, system):
        system.orchestrator.optimize_coverage("bedroom")
        result = system.reoptimize()
        assert isinstance(result, ReoptimizationResult)
        assert "s1" in result
        assert result["s1"].shape == (16, 16)
        assert set(result) == {"s1"}
        assert len(result) == 1
        assert dict(result) == result.joint

    def test_timing_and_eval_counts_populated(self, system):
        task = system.orchestrator.optimize_coverage("bedroom")
        result = system.reoptimize()
        assert set(result.timing) == {
            "channel_build_s",
            "optimize_s",
            "push_s",
            "metrics_s",
            "total_s",
        }
        assert all(v >= 0.0 for v in result.timing.values())
        assert result.objective_evaluations[task.task_id] > 0
        assert result.pushed

    def test_tdm_only_pass_exposes_slots(self, system):
        t1 = system.orchestrator.optimize_coverage(
            "bedroom", strategy=MultiplexStrategy.TIME
        )
        t2 = system.orchestrator.enhance_link(
            "phone", snr=25.0, strategy=MultiplexStrategy.TIME
        )
        result = system.reoptimize()
        assert result.joint == {}
        assert set(result.slots) == {t1.task_id, t2.task_id}
        # Mapping view falls back to the first (highest-priority)
        # slot's configurations.
        assert result.live == next(iter(result.slots.values()))
        assert "s1" in result

    def test_no_push_pass_reports_unpushed(self, system):
        system.orchestrator.optimize_coverage("bedroom")
        result = system.reoptimize(push=False)
        assert not result.pushed
        assert result.settle_s == 0.0
        assert "push_s" not in result.timing


class TestSensingModeRename:
    def test_mode_keyword(self, system):
        task = system.orchestrator.enable_sensing("bedroom", mode="tracking")
        assert task.goal["mode"] == "tracking"

    def test_mode_defaults_to_tracking(self, system):
        task = system.orchestrator.enable_sensing("bedroom")
        assert task.goal["mode"] == "tracking"

    def test_type_keyword_removed(self, system):
        # The deprecated ``type=`` spelling has been retired at the
        # orchestrator API; only the LLM dispatcher still translates it.
        with pytest.raises(TypeError):
            system.orchestrator.enable_sensing(
                "bedroom", type="localization"
            )

    def test_llm_dispatch_translates_type_to_mode(self, system):
        # The mock's Fig. 6 completion spells the kwarg ``type=``; the
        # dispatcher must land it in the task goal as ``mode``.
        tasks = system.handle_user_demand(
            "I want to start VR gaming in the bedroom."
        )
        sensing = [t for t in tasks if t.service.value == "sensing"]
        assert sensing and sensing[0].goal["mode"] == "tracking"
