"""Endpoint mobility: the beam follows the client (§3.1)."""

import numpy as np
import pytest

from repro import SurfOS, ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import Adam
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)

START = (6.0, 3.0, 1.0)
DESTINATION = (7.8, 0.8, 1.0)


@pytest.fixture()
def system():
    env = two_room_apartment()
    sites = apartment_sites()
    os_ = SurfOS(
        env,
        frequency_hz=FREQ,
        optimizer=Adam(max_iterations=60),
        grid_spacing_m=1.0,
    )
    os_.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    os_.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    os_.add_client(ClientDevice("phone", START))
    return os_.boot(observe_room="bedroom")


def client_snr(system, task):
    return system.orchestrator.evaluate_task(task.task_id)["median_snr_db"]


class TestMobility:
    def test_refresh_repoints_link_task(self, system):
        task = system.orchestrator.enhance_link("phone", snr=25.0)
        system.reoptimize()
        client = system.hardware.client("phone")
        client.move_to(DESTINATION)
        affected = system.orchestrator.refresh_client_tasks("phone")
        assert task.task_id in affected
        ctx = system.orchestrator._contexts[task.task_id]
        assert np.allclose(ctx.points[0], DESTINATION)

    def test_daemon_reoptimizes_on_endpoint_move(self, system):
        task = system.orchestrator.enhance_link("phone", snr=25.0)
        system.reoptimize()
        snr_at_start = client_snr(system, task)

        client = system.hardware.client("phone")
        system.dynamics.move_endpoint(client, DESTINATION)
        record = system.daemon.step(dt=0.5)
        assert record is not None
        assert record.trigger == "endpoint-moved"

        # The beam followed: SNR at the new position is restored to the
        # same ballpark as at the start, far above the stale beam.
        snr_after = client_snr(system, task)
        assert snr_after > snr_at_start - 5.0
        assert snr_after > 15.0

    def test_stale_beam_would_have_been_bad(self, system):
        task = system.orchestrator.enhance_link("phone", snr=25.0)
        system.reoptimize()
        client = system.hardware.client("phone")
        client.move_to(DESTINATION)
        system.orchestrator.refresh_client_tasks("phone")
        # Without re-optimizing, the old configuration serves the old
        # spot; re-optimizing recovers headroom at the new one.  (The
        # stale config keeps some broad mirror-like coverage, so the
        # gap is a couple of dB, not a cliff.)
        stale = client_snr(system, task)
        system.reoptimize()
        fresh = client_snr(system, task)
        assert fresh > stale + 1.0

    def test_unrelated_clients_untouched(self, system):
        system.add_client(ClientDevice("tv", (7.5, 3.2, 1.0)))
        tv_task = system.orchestrator.enhance_link("tv")
        phone_task = system.orchestrator.enhance_link("phone")
        affected = system.orchestrator.refresh_client_tasks("phone")
        assert phone_task.task_id in affected
        assert tv_task.task_id not in affected
