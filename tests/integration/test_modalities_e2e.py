"""Non-phase control modalities end to end through the channel model.

Table 1 lists amplitude (RFocus/LAVA) and polarization (LLAMA)
surfaces; these tests drive both modalities through the simulator:
RFocus-style greedy on/off selection improves a link, and LLAMA-style
polarization alignment recovers a cross-polarized link.
"""

import numpy as np
import pytest

from repro.channel import ChannelSimulator, single_antenna_node
from repro.core.units import ghz
from repro.drivers import AmplitudeDriver, PolarizationDriver
from repro.em import LinkBudget
from repro.geometry import METAL, Environment, vec3
from repro.services import snr_map_db
from repro.surfaces import (
    OperationMode,
    SignalProperty,
    SurfacePanel,
    SurfaceSpec,
)

FREQ = ghz(2.4)


def make_spec(props, mode=OperationMode.TRANSFLECTIVE):
    return SurfaceSpec(
        design="modality-e2e",
        band_hz=(ghz(2.3), ghz(2.5)),
        properties=frozenset(props),
        operation_mode=mode,
        reconfigurable=True,
        control_delay_s=1e-3,
    )


@pytest.fixture()
def blocked_link():
    """AP and client separated by metal; the surface is the only path."""
    env = Environment(name="blocked")
    env.add_wall_2d((3, -2), (3, 2), METAL, name="blocker")
    ap = single_antenna_node("ap", vec3(0, 0, 1.5))
    client = np.array([[5.0, 1.0, 1.5]])
    return env, ap, client


class TestAmplitudeRFocusStyle:
    def test_greedy_mask_improves_link(self, blocked_link):
        """RFocus's majority-vote style reduces to keeping elements
        whose contribution is phase-aligned with the current sum."""
        env, ap, client = blocked_link
        panel = SurfacePanel(
            "rfocus",
            make_spec([SignalProperty.AMPLITUDE]),
            16,
            16,
            vec3(3.5, 3.0, 1.5),
            vec3(0, -1, 0),
        )
        driver = AmplitudeDriver(panel)
        budget = LinkBudget(tx_power_dbm=17.0, bandwidth_hz=40e6)
        sim = ChannelSimulator(env, FREQ)
        model = sim.build(ap, client, [panel])
        form = model.linear_form(panel.panel_id, {})

        def snr_of_mask(mask):
            x = mask.reshape(-1).astype(complex)
            return snr_map_db(model, {panel.panel_id: x}, budget)[0]

        all_on = np.ones(panel.shape)
        # Element scores: cosine alignment of each element's
        # contribution with the all-on aggregate (one "vote round").
        contributions = form.coeffs[0, 0]  # single point, single antenna
        aggregate = contributions.sum() + form.offset[0, 0]
        scores = np.cos(np.angle(contributions) - np.angle(aggregate))
        mask = driver.greedy_mask(scores, keep_fraction=0.5)
        assert snr_of_mask(mask) > snr_of_mask(all_on) + 0.5

    def test_mask_applies_through_driver(self, blocked_link):
        env, ap, client = blocked_link
        panel = SurfacePanel(
            "rfocus",
            make_spec([SignalProperty.AMPLITUDE]),
            6,
            6,
            vec3(3.0, 4.0, 1.5),
            vec3(0, -1, 0),
        )
        driver = AmplitudeDriver(panel)
        mask = np.zeros((6, 6))
        mask[:3] = 1.0
        driver.set_amplitudes(mask, now=0.0)
        driver.commit(now=1.0)
        assert np.allclose(panel.configuration.amplitudes, mask)
        coeffs = panel.configuration.coefficients()
        assert np.count_nonzero(coeffs) == 18


class TestPolarizationLlamaStyle:
    def test_alignment_recovers_cross_polarized_link(self, blocked_link):
        """A client cross-polarized to the AP receives nothing via the
        surface until the elements rotate polarization to match."""
        env, ap, client = blocked_link
        panel = SurfacePanel(
            "llama",
            make_spec([SignalProperty.POLARIZATION]),
            10,
            10,
            vec3(3.5, 3.0, 1.5),
            vec3(0, -1, 0),
        )
        driver = PolarizationDriver(panel)
        budget = LinkBudget(tx_power_dbm=17.0, bandwidth_hz=40e6)
        sim = ChannelSimulator(env, FREQ)
        model = sim.build(ap, client, [panel])
        client_polarization = np.pi / 2  # cross-polarized to the AP's 0

        def snr_for_rotation(angle):
            driver.set_polarizations(np.full(panel.shape, angle), now=0.0)
            driver.commit(now=1.0)
            effective = driver.effective_configuration(client_polarization)
            x = effective.coefficients().reshape(-1)
            return snr_map_db(model, {panel.panel_id: x}, budget)[0]

        crossed = snr_for_rotation(0.0)       # surface keeps AP polarization
        aligned = snr_for_rotation(np.pi / 2)  # surface rotates to client
        assert aligned > crossed + 20.0

    def test_partial_rotation_intermediate(self, blocked_link):
        env, ap, client = blocked_link
        panel = SurfacePanel(
            "llama",
            make_spec([SignalProperty.POLARIZATION]),
            8,
            8,
            vec3(3.0, 4.0, 1.5),
            vec3(0, -1, 0),
        )
        driver = PolarizationDriver(panel)
        driver.set_polarizations(np.full(panel.shape, np.pi / 4), now=0.0)
        driver.commit(now=1.0)
        amps = driver.effective_amplitudes(np.pi / 2)
        assert np.allclose(amps, np.cos(np.pi / 4))
