"""Data-plane beam tracking: codebook + endpoint feedback (§3.1).

"Surface drivers manage surfaces by updating surfaces' locally stored
configurations, analogous to … beamforming codebooks for 802.11ad APs.
Based on the endpoint feedback, a surface reacts locally to choose the
best configuration."  This test closes the loop through the channel
simulator: a client moves, a beam sweep measures RSS per stored
configuration, and the driver's local selection follows the client —
with zero control-plane writes.
"""

import numpy as np
import pytest

from repro.channel import ChannelSimulator, live_configs
from repro.core.units import ghz
from repro.drivers import FeedbackReport, ProgrammablePhaseDriver
from repro.em import beam_codebook_targets
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import ClientDevice
from repro.services import snr_map_db

FREQ = ghz(28)


@pytest.fixture()
def tracking_setup(ap, budget):
    env = two_room_apartment()
    sites = apartment_sites()
    from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

    panel = SurfacePanel(
        "s1",
        GENERIC_PROGRAMMABLE_28,
        20,
        20,
        sites.single_surface_center,
        sites.single_surface_normal,
    )
    driver = ProgrammablePhaseDriver(panel)
    room = env.room("bedroom")
    targets = beam_codebook_targets(
        room.center, (room.x_max - room.x_min - 1, room.y_max - room.y_min - 1),
        beams_x=3, beams_y=3, z=1.0,
    )
    names = driver.load_beam_codebook(sites.ap_position, targets, FREQ, now=0.0)
    driver.commit(now=1.0)
    simulator = ChannelSimulator(env, FREQ)
    return env, panel, driver, simulator, names, targets


def beam_sweep(simulator, ap, panel, driver, client_pos, budget):
    """Measure the client's SNR under every stored configuration."""
    metrics = {}
    point = np.asarray(client_pos, dtype=float)[None, :]
    model = simulator.build(ap, point, [panel])
    for name in driver.stored_configurations():
        config = driver.get_configuration(name)
        x = panel.feasible(config).coefficients().reshape(-1)
        snr = snr_map_db(model, {panel.panel_id: x}, budget)[0]
        metrics[name] = float(snr)
    return metrics


class TestBeamTracking:
    def test_codebook_loaded(self, tracking_setup):
        env, panel, driver, simulator, names, targets = tracking_setup
        assert len(names) == 9
        assert driver.active_configuration_name == "beam0"

    def test_feedback_selects_geometrically_right_beam(
        self, tracking_setup, ap, budget
    ):
        env, panel, driver, simulator, names, targets = tracking_setup
        client = ClientDevice("phone", targets[7])  # near beam7's focus
        metrics = beam_sweep(simulator, ap, panel, driver, client.position, budget)
        chosen = driver.apply_feedback(
            FeedbackReport(client.client_id, metrics)
        )
        # The chosen beam's focal target is among the closest two to
        # the client (beams overlap; adjacency is acceptable).
        chosen_idx = int(chosen.replace("beam", ""))
        dists = [np.linalg.norm(t - client.position) for t in targets]
        assert chosen_idx in np.argsort(dists)[:2]

    def test_selection_follows_moving_client(self, tracking_setup, ap, budget):
        env, panel, driver, simulator, names, targets = tracking_setup
        client = ClientDevice("phone", targets[0])
        picks = []
        for target_idx in (0, 4, 8):
            client.move_to(targets[target_idx])
            metrics = beam_sweep(
                simulator, ap, panel, driver, client.position, budget
            )
            picks.append(
                driver.apply_feedback(FeedbackReport("phone", metrics))
            )
        # The beam choice changed as the client crossed the room.
        assert len(set(picks)) >= 2

    def test_tracking_beats_static_beam(self, tracking_setup, ap, budget):
        env, panel, driver, simulator, names, targets = tracking_setup
        static_name = "beam0"
        snr_static, snr_tracked = [], []
        for target_idx in (2, 4, 6, 8):
            pos = targets[target_idx] + np.array([0.2, -0.2, 0.0])
            metrics = beam_sweep(simulator, ap, panel, driver, pos, budget)
            snr_static.append(metrics[static_name])
            best = max(metrics, key=lambda n: metrics[n])
            snr_tracked.append(metrics[best])
        assert np.mean(snr_tracked) > np.mean(snr_static) + 3.0

    def test_no_control_plane_writes_during_tracking(
        self, tracking_setup, ap, budget
    ):
        env, panel, driver, simulator, names, targets = tracking_setup
        client = ClientDevice("phone", targets[5])
        metrics = beam_sweep(simulator, ap, panel, driver, client.position, budget)
        driver.apply_feedback(FeedbackReport("phone", metrics))
        # Local selection queues nothing: the control plane stays idle.
        assert driver.pending_count() == 0
