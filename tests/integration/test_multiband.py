"""Frequency-division multiplexing through the Scrolls driver."""

import numpy as np
import pytest

from repro.channel import ChannelSimulator, ula_node
from repro.core.units import ghz
from repro.drivers import FrequencySelectiveDriver
from repro.em import LinkBudget
from repro.geometry import apartment_sites, two_room_apartment
from repro.services import snr_map_db
from repro.surfaces import CATALOG, SurfacePanel

BANDS = [(ghz(2.3), ghz(2.5)), (ghz(4.9), ghz(5.1))]


@pytest.fixture()
def deployment():
    env = two_room_apartment()
    sites = apartment_sites()
    panel = SurfacePanel(
        "scrolls",
        CATALOG["Scrolls"].spec,
        24,
        24,
        sites.single_surface_center,
        sites.single_surface_normal,
    )
    driver = FrequencySelectiveDriver(panel, bands_hz=BANDS)
    budget = LinkBudget(tx_power_dbm=17.0, bandwidth_hz=40e6)
    points = env.room("bedroom").grid(0.8, z=1.0)
    return env, sites, panel, driver, budget, points


def surface_gain_db(env, sites, panel, driver, budget, points, carrier):
    """p90 per-point SNR gain the tuned surface adds at a carrier."""
    ap = ula_node("ap", sites.ap_position, 2, carrier, (0, 0, 1), (1, 0.3, 0))
    model = ChannelSimulator(env, carrier).build(ap, points, [panel])
    baseline = snr_map_db(
        model, {panel.panel_id: np.zeros(panel.num_elements)}, budget
    )
    x = driver.effective_configuration(carrier).coefficients().reshape(-1)
    tuned = snr_map_db(model, {panel.panel_id: x}, budget)
    return float(np.percentile(tuned - baseline, 90))


def test_rows_help_their_band_only(deployment):
    env, sites, panel, driver, budget, points = deployment
    # All rows on the 5 GHz band.
    driver.set_row_bands([1] * panel.rows)
    gain_5 = surface_gain_db(
        env, sites, panel, driver, budget, points, ghz(5.0)
    )
    gain_24 = surface_gain_db(
        env, sites, panel, driver, budget, points, ghz(2.4)
    )
    assert gain_5 > gain_24 + 1.0
    assert gain_5 > 1.0


def test_reallocating_rows_moves_the_gain(deployment):
    env, sites, panel, driver, budget, points = deployment
    driver.allocate_rows({1: 1.0})  # all rows to 5 GHz
    before = surface_gain_db(
        env, sites, panel, driver, budget, points, ghz(5.0)
    )
    driver.allocate_rows({0: 1.0})  # hand everything to 2.4 GHz
    after = surface_gain_db(
        env, sites, panel, driver, budget, points, ghz(5.0)
    )
    assert after < before - 1.0


def test_partial_allocation_intermediate(deployment):
    env, sites, panel, driver, budget, points = deployment
    gains = {}
    for rows_5 in (0, panel.rows // 2, panel.rows):
        driver.set_row_bands([1] * rows_5 + [0] * (panel.rows - rows_5))
        gains[rows_5] = surface_gain_db(
            env, sites, panel, driver, budget, points, ghz(5.0)
        )
    assert gains[0] < gains[panel.rows]
    assert gains[0] <= gains[panel.rows // 2] + 0.5
