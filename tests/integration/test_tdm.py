"""Time-division multiplexing through the orchestrator (§3.2)."""

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.core.units import ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice, HardwareManager
from repro.orchestrator import (
    Adam,
    MultiplexStrategy,
    SurfaceOrchestrator,
    TaskState,
)
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


@pytest.fixture()
def orch():
    env = two_room_apartment()
    sites = apartment_sites()
    hw = HardwareManager()
    hw.register_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    hw.register_client(ClientDevice("phone", (6.5, 1.2, 1.0)))
    hw.register_client(ClientDevice("tv", (7.8, 3.4, 1.0)))
    hw.register_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    return SurfaceOrchestrator(
        env, hw, FREQ, optimizer=Adam(max_iterations=60), grid_spacing_m=1.0
    )


class TestTDM:
    def test_two_tdm_tasks_each_get_a_slot(self, orch):
        a = orch.enhance_link("phone", strategy=MultiplexStrategy.TIME)
        b = orch.enhance_link("tv", strategy=MultiplexStrategy.TIME)
        orch.reoptimize()
        assert a.state is TaskState.RUNNING
        assert b.state is TaskState.RUNNING
        schedule = dict(orch.tdm_schedule())
        assert set(schedule) == {a.task_id, b.task_id}
        assert all(f == pytest.approx(0.5) for f in schedule.values())
        driver = orch.hardware.driver("s1")
        stored = driver.stored_configurations()
        assert f"task-{a.task_id}" in stored
        assert f"task-{b.task_id}" in stored

    def test_slot_switching_changes_live_config(self, orch):
        a = orch.enhance_link("phone", strategy=MultiplexStrategy.TIME)
        b = orch.enhance_link("tv", strategy=MultiplexStrategy.TIME)
        orch.reoptimize()
        driver = orch.hardware.driver("s1")
        orch.activate_task_slot(a.task_id)
        phases_a = driver.panel.configuration.phases.copy()
        orch.activate_task_slot(b.task_id)
        phases_b = driver.panel.configuration.phases.copy()
        assert not np.allclose(phases_a, phases_b)
        assert driver.active_configuration_name == f"task-{b.task_id}"

    def test_each_slot_serves_its_own_client_best(self, orch):
        a = orch.enhance_link("phone", strategy=MultiplexStrategy.TIME)
        b = orch.enhance_link("tv", strategy=MultiplexStrategy.TIME)
        orch.reoptimize()

        def snr_of(task):
            return orch.evaluate_task(task.task_id)["median_snr_db"]

        orch.activate_task_slot(a.task_id)
        a_during_a = snr_of(a)
        b_during_a = snr_of(b)
        orch.activate_task_slot(b.task_id)
        b_during_b = snr_of(b)
        a_during_b = snr_of(a)
        assert a_during_a > a_during_b
        assert b_during_b > b_during_a

    def test_tdm_metrics_use_own_slot(self, orch):
        a = orch.enhance_link("phone", strategy=MultiplexStrategy.TIME)
        b = orch.enhance_link("tv", strategy=MultiplexStrategy.TIME)
        orch.reoptimize()
        # Each task's recorded SNR must be the good (own-slot) one.
        for task in (a, b):
            orch.activate_task_slot(task.task_id)
            live = orch.evaluate_task(task.task_id)["median_snr_db"]
            assert task.metrics["median_snr_db"] == pytest.approx(
                live, abs=1.0
            )

    def test_joint_and_tdm_coexist(self, orch):
        # The joint group leaves half the time axis for TDM tasks.
        joint = orch.optimize_coverage("bedroom", time_fraction=0.5)
        tdm = orch.enhance_link("phone", strategy=MultiplexStrategy.TIME)
        orch.reoptimize()
        # The joint configuration is live; the TDM slot is stored.
        driver = orch.hardware.driver("s1")
        assert driver.active_configuration_name == "orchestrated"
        assert f"task-{tdm.task_id}" in driver.stored_configurations()
        assert dict(orch.tdm_schedule()) == {tdm.task_id: 0.5}
        # Switching into the TDM slot is still possible.
        orch.activate_task_slot(tdm.task_id)
        assert driver.active_configuration_name == f"task-{tdm.task_id}"

    def test_activate_unknown_slot_rejected(self, orch):
        orch.optimize_coverage("bedroom")
        orch.reoptimize()
        with pytest.raises(ServiceError):
            orch.activate_task_slot("task-ghost")

    def test_third_half_time_task_rejected(self, orch):
        orch.enhance_link("phone", strategy=MultiplexStrategy.TIME)
        orch.enhance_link("tv", strategy=MultiplexStrategy.TIME)
        from repro.core.errors import AdmissionError

        with pytest.raises(AdmissionError):
            # Equal priority, no capacity left on the time axis.
            orch.enhance_link("phone", strategy=MultiplexStrategy.TIME)
