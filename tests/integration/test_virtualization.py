"""Propagation-environment virtualization (§5): tenant isolation."""

import pytest

from repro.core.errors import ServiceError
from repro.core.units import ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice, HardwareManager
from repro.orchestrator import Adam, SurfaceOrchestrator, TaskState
from repro.orchestrator.virtualization import Hypervisor, TenantPolicy
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


@pytest.fixture()
def hypervisor():
    env = two_room_apartment()
    sites = apartment_sites()
    hw = HardwareManager()
    hw.register_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    hw.register_client(ClientDevice("phone", (6.5, 1.2, 1.0)))
    hw.register_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            12,
            12,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    orch = SurfaceOrchestrator(
        env, hw, FREQ, optimizer=Adam(max_iterations=40), grid_spacing_m=1.0
    )
    return Hypervisor(orch)


class TestTenantProvisioning:
    def test_budgets_cannot_exceed_physical_axis(self, hypervisor):
        hypervisor.create_tenant(TenantPolicy("isp-a", time_budget=0.6))
        with pytest.raises(ServiceError):
            hypervisor.create_tenant(TenantPolicy("isp-b", time_budget=0.5))
        hypervisor.create_tenant(TenantPolicy("isp-b", time_budget=0.4))

    def test_duplicate_names_rejected(self, hypervisor):
        hypervisor.create_tenant(TenantPolicy("isp-a", time_budget=0.4))
        with pytest.raises(ServiceError):
            hypervisor.create_tenant(TenantPolicy("isp-a", time_budget=0.1))

    def test_policy_validation(self):
        with pytest.raises(ServiceError):
            TenantPolicy("")
        with pytest.raises(ServiceError):
            TenantPolicy("x", time_budget=0.0)
        with pytest.raises(ServiceError):
            TenantPolicy("x", max_priority=-1)

    def test_tenant_lookup(self, hypervisor):
        hypervisor.create_tenant(TenantPolicy("isp-a", time_budget=0.5))
        assert hypervisor.tenant("isp-a").policy.name == "isp-a"
        with pytest.raises(ServiceError):
            hypervisor.tenant("ghost")


class TestPolicyEnforcement:
    def test_room_scope(self, hypervisor):
        tenant = hypervisor.create_tenant(
            TenantPolicy("homeowner", allowed_rooms=("bedroom",), time_budget=0.5)
        )
        task = tenant.optimize_coverage("bedroom")
        assert task.state is TaskState.READY
        with pytest.raises(ServiceError):
            tenant.optimize_coverage("living")

    def test_priority_ceiling(self, hypervisor):
        tenant = hypervisor.create_tenant(
            TenantPolicy("guest", max_priority=3, time_budget=0.5)
        )
        task = tenant.enhance_link("phone", priority=9)
        assert task.priority == 3

    def test_time_budget_enforced(self, hypervisor):
        tenant = hypervisor.create_tenant(
            TenantPolicy("isp-a", time_budget=0.5)
        )
        tenant.optimize_coverage("bedroom", time_fraction=0.4)
        assert tenant.remaining_time_budget() == pytest.approx(0.1)
        with pytest.raises(ServiceError):
            tenant.enhance_link("phone", time_fraction=0.2)
        # A request inside the remaining budget is fine.
        tenant.enhance_link("phone", time_fraction=0.1)

    def test_budget_recovers_on_completion(self, hypervisor):
        tenant = hypervisor.create_tenant(
            TenantPolicy("isp-a", time_budget=0.5)
        )
        task = tenant.optimize_coverage("bedroom", time_fraction=0.5)
        assert tenant.remaining_time_budget() == pytest.approx(0.0)
        tenant.complete_task(task.task_id)
        assert tenant.remaining_time_budget() == pytest.approx(0.5)


class TestIsolation:
    def test_cannot_cancel_other_tenants_tasks(self, hypervisor):
        a = hypervisor.create_tenant(TenantPolicy("isp-a", time_budget=0.5))
        b = hypervisor.create_tenant(TenantPolicy("isp-b", time_budget=0.5))
        task = a.optimize_coverage("bedroom", time_fraction=0.3)
        with pytest.raises(ServiceError):
            b.complete_task(task.task_id)
        assert hypervisor.owner_of(task.task_id) == "isp-a"

    def test_task_listing_scoped(self, hypervisor):
        a = hypervisor.create_tenant(TenantPolicy("isp-a", time_budget=0.5))
        b = hypervisor.create_tenant(TenantPolicy("isp-b", time_budget=0.5))
        ta = a.optimize_coverage("bedroom", time_fraction=0.3)
        tb = b.enhance_link("phone", time_fraction=0.3)
        assert [t.task_id for t in a.tasks()] == [ta.task_id]
        assert [t.task_id for t in b.tasks()] == [tb.task_id]

    def test_usage_report(self, hypervisor):
        a = hypervisor.create_tenant(TenantPolicy("isp-a", time_budget=0.6))
        a.optimize_coverage("bedroom", time_fraction=0.4)
        report = hypervisor.usage_report()
        assert report["isp-a"]["time_held"] == pytest.approx(0.4)
        assert report["isp-a"]["active_tasks"] == 1.0


class TestEndToEnd:
    def test_two_tenants_served_by_one_optimization(self, hypervisor):
        a = hypervisor.create_tenant(TenantPolicy("isp-a", time_budget=0.5))
        b = hypervisor.create_tenant(TenantPolicy("isp-b", time_budget=0.5))
        ta = a.optimize_coverage("bedroom", time_fraction=0.5)
        tb = b.enhance_link("phone", time_fraction=0.5)
        hypervisor.orchestrator.reoptimize()
        assert ta.state is TaskState.RUNNING
        assert tb.state is TaskState.RUNNING
        assert "median_snr_db" in ta.metrics
        assert "median_snr_db" in tb.metrics
