"""Radiation pattern semantics."""

import math

import numpy as np
import pytest

from repro.em import ISOTROPIC, META_ATOM, PATCH, AntennaPattern
from repro.geometry import vec3


def test_isotropic_constant_gain():
    assert ISOTROPIC.gain_linear(1.0) == pytest.approx(1.0)
    assert ISOTROPIC.gain_linear(-1.0) == pytest.approx(1.0)


def test_patch_front_only():
    assert PATCH.gain_linear(-0.5) == 0.0
    assert PATCH.gain_linear(1.0) == pytest.approx(10 ** 0.8)


def test_cos_envelope_monotone():
    gains = [META_ATOM.gain_linear(c) for c in (1.0, 0.8, 0.5, 0.2)]
    assert gains == sorted(gains, reverse=True)


def test_gain_toward_geometry():
    pattern = AntennaPattern(peak_gain_dbi=0.0, cos_exponent=1.0)
    pos, boresight = vec3(0, 0, 0), vec3(1, 0, 0)
    on_axis = pattern.gain_toward(pos, boresight, vec3(5, 0, 0))
    off_axis = pattern.gain_toward(pos, boresight, vec3(5, 5, 0))
    assert on_axis == pytest.approx(1.0)
    assert off_axis == pytest.approx(math.cos(math.pi / 4), rel=1e-6)


def test_gain_toward_self_is_peak():
    assert PATCH.gain_toward(vec3(1, 1, 1), vec3(1, 0, 0), vec3(1, 1, 1)) == (
        pytest.approx(PATCH.peak_gain_linear)
    )


def test_amplitude_is_sqrt_gain():
    pattern = AntennaPattern(peak_gain_dbi=6.0, cos_exponent=0.0)
    amp = pattern.amplitude_toward(vec3(0, 0, 0), vec3(1, 0, 0), vec3(2, 0, 0))
    assert amp == pytest.approx(math.sqrt(pattern.peak_gain_linear))


def test_negative_exponent_rejected():
    with pytest.raises(ValueError):
        AntennaPattern(cos_exponent=-1.0)
