"""Steering vectors and focusing configurations."""

import numpy as np
import pytest

from repro.core.units import ghz, wavelength
from repro.em import (
    beam_codebook_targets,
    focus_configuration,
    steering_phases_toward_point,
    ula_positions,
)
from repro.geometry import vec3

FREQ = ghz(28)


def test_ula_positions_centered_and_spaced():
    pos = ula_positions(4, FREQ, center=(0, 0, 1), axis=(0, 0, 1))
    assert pos.shape == (4, 3)
    assert np.allclose(pos.mean(axis=0), [0, 0, 1])
    spacing = np.linalg.norm(pos[1] - pos[0])
    assert spacing == pytest.approx(0.5 * wavelength(FREQ))


def test_ula_rejects_bad_args():
    with pytest.raises(ValueError):
        ula_positions(0, FREQ, (0, 0, 0), (0, 0, 1))
    with pytest.raises(ValueError):
        ula_positions(2, FREQ, (0, 0, 0), (0, 0, 0))


def test_focus_phases_align_at_target():
    """Focusing phases make all element contributions coherent."""
    lam = wavelength(FREQ)
    elements = np.stack(
        [np.zeros(8), np.linspace(-0.2, 0.2, 8), np.zeros(8)], axis=1
    )
    src, tgt = vec3(-3, 0.4, 0), vec3(4, -0.7, 0)
    phases = steering_phases_toward_point(elements, src, tgt, FREQ)
    d1 = np.linalg.norm(elements - src, axis=1)
    d2 = np.linalg.norm(elements - tgt, axis=1)
    total_phase = phases - 2 * np.pi * (d1 + d2) / lam
    # After the surface's shift, residual phases are all equal (mod 2π).
    residual = np.exp(1j * total_phase)
    assert np.allclose(residual, residual[0], atol=1e-9)


def test_focus_configuration_shape_and_name():
    elements = np.random.default_rng(0).normal(size=(12, 3))
    cfg = focus_configuration(
        elements, (3, 4), vec3(-1, 0, 0), vec3(1, 0, 0), FREQ, name="beam0"
    )
    assert cfg.shape == (3, 4)
    assert cfg.name == "beam0"
    assert cfg.frequency_hz == FREQ


def test_beam_codebook_targets_grid():
    targets = beam_codebook_targets((5, 5, 0), (2, 2, 0), 3, 2, z=1.2)
    assert len(targets) == 6
    xs = sorted({t[0] for t in targets})
    assert xs[0] == pytest.approx(4.0)
    assert xs[-1] == pytest.approx(6.0)
    assert all(t[2] == 1.2 for t in targets)


def test_beam_codebook_single_beam():
    targets = beam_codebook_targets((1, 2, 0), (4, 4, 0), 1, 1, z=0.5)
    assert len(targets) == 1
    assert targets[0] == pytest.approx([1, 2, 0.5])


def test_beam_codebook_rejects_zero():
    with pytest.raises(ValueError):
        beam_codebook_targets((0, 0, 0), (1, 1, 0), 0, 1)
