"""Friis / FSPL / phase conventions."""

import cmath
import math

import pytest

from repro.core.units import ghz, wavelength
from repro.em import (
    complex_leg_gain,
    friis_amplitude,
    fspl_db,
    path_phase,
    propagation_delay_s,
)


def test_fspl_textbook_value():
    # 2.4 GHz over 1 m is the classic ~40.05 dB.
    assert fspl_db(1.0, ghz(2.4)) == pytest.approx(40.05, abs=0.1)


def test_fspl_20db_per_decade():
    assert fspl_db(100.0, ghz(5)) - fspl_db(10.0, ghz(5)) == pytest.approx(20.0)


def test_fspl_increases_with_frequency():
    assert fspl_db(10, ghz(60)) > fspl_db(10, ghz(2.4))


def test_friis_power_matches_fspl():
    amp = friis_amplitude(10.0, ghz(5))
    power_db = 20.0 * math.log10(amp)
    assert power_db == pytest.approx(-fspl_db(10.0, ghz(5)))


def test_friis_gains_scale_amplitude():
    base = friis_amplitude(5.0, ghz(28))
    with_gain = friis_amplitude(5.0, ghz(28), gain_tx_linear=4.0)
    assert with_gain == pytest.approx(2.0 * base)


def test_friis_rejects_nonpositive_distance():
    with pytest.raises(ValueError):
        friis_amplitude(0.0, ghz(5))
    with pytest.raises(ValueError):
        fspl_db(-1.0, ghz(5))


def test_path_phase_one_wavelength():
    lam = wavelength(ghz(28))
    assert path_phase(lam, ghz(28)) == pytest.approx(-2 * math.pi)


def test_propagation_delay():
    assert propagation_delay_s(299_792_458.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        propagation_delay_s(-1.0)


def test_complex_leg_gain_composition():
    g = complex_leg_gain(3.0, ghz(28), 2.0, 1.0, extra_amplitude=0.5)
    assert abs(g) == pytest.approx(
        friis_amplitude(3.0, ghz(28), 2.0, 1.0) * 0.5
    )
    assert cmath.phase(g) == pytest.approx(
        math.remainder(path_phase(3.0, ghz(28)), 2 * math.pi), abs=1e-9
    )
