"""Link budgets, SNR, capacity."""

import math

import numpy as np
import pytest

from repro.em import LinkBudget, shannon_required_snr_db, snr_db_from_channel


@pytest.fixture()
def budget():
    return LinkBudget(tx_power_dbm=20.0, bandwidth_hz=400e6, noise_figure_db=7.0)


def test_noise_floor_value(budget):
    # -174 + 10log10(400e6) + 7 ≈ -81 dBm.
    assert budget.noise_floor_dbm == pytest.approx(-81.0, abs=0.2)


def test_rss_from_gain(budget):
    assert budget.rss_dbm(1e-7) == pytest.approx(20.0 - 70.0)


def test_snr_consistent_with_rss(budget):
    gain = 1e-8
    assert budget.snr_db(gain) == pytest.approx(
        budget.rss_dbm(gain) - budget.noise_floor_dbm, abs=1e-6
    )


def test_snr_floor_for_zero_gain(budget):
    assert budget.snr_db(0.0) == pytest.approx(-40.0)


def test_capacity_positive_and_monotone(budget):
    caps = [budget.capacity_bps(g) for g in (1e-10, 1e-8, 1e-6)]
    assert caps[0] >= 0
    assert caps == sorted(caps)


def test_required_gain_round_trips(budget):
    gain = budget.required_gain_for_snr(25.0)
    assert budget.snr_db(gain) == pytest.approx(25.0, abs=1e-6)


def test_mrt_snr_uses_channel_norm(budget):
    h = np.array([3e-4 + 0j, 4e-4j])
    gain = 9e-8 + 16e-8
    assert snr_db_from_channel(h, budget) == pytest.approx(
        budget.snr_db(gain), abs=1e-9
    )


def test_shannon_inverse_round_trip():
    bw = 100e6
    snr_db = shannon_required_snr_db(500e6, bw)
    capacity = bw * math.log2(1 + 10 ** (snr_db / 10))
    assert capacity == pytest.approx(500e6, rel=1e-9)


def test_shannon_inverse_validation():
    with pytest.raises(ValueError):
        shannon_required_snr_db(0.0, 1e6)
    with pytest.raises(ValueError):
        shannon_required_snr_db(1e6, 0.0)
