"""Shared fixtures: a small apartment deployment everything can reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import ChannelSimulator, ula_node
from repro.core.units import ghz
from repro.em import LinkBudget
from repro.geometry import apartment_sites, two_room_apartment
from repro.surfaces import (
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    SurfacePanel,
)

FREQ = ghz(28.0)


@pytest.fixture()
def env():
    return two_room_apartment()


@pytest.fixture()
def sites():
    return apartment_sites()


@pytest.fixture()
def ap(sites):
    return ula_node(
        "ap", sites.ap_position, 4, FREQ, axis=(0, 0, 1), boresight=(1, 0.3, 0)
    )


@pytest.fixture()
def small_passive(sites):
    return SurfacePanel(
        "passive",
        GENERIC_PASSIVE_28,
        12,
        12,
        sites.passive_center,
        sites.passive_normal,
    )


@pytest.fixture()
def small_prog(sites):
    return SurfacePanel(
        "prog",
        GENERIC_PROGRAMMABLE_28,
        8,
        8,
        sites.programmable_center,
        sites.programmable_normal,
    )


@pytest.fixture()
def single_prog(sites):
    return SurfacePanel(
        "s1",
        GENERIC_PROGRAMMABLE_28,
        12,
        12,
        sites.single_surface_center,
        sites.single_surface_normal,
    )


@pytest.fixture()
def simulator(env):
    return ChannelSimulator(env, FREQ)


@pytest.fixture()
def bedroom_points(env):
    return env.room("bedroom").grid(1.0)


@pytest.fixture()
def budget():
    return LinkBudget()


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
