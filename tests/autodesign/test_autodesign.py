"""Design database, site enumeration, and the deployment planner."""

import math

import numpy as np
import pytest

from repro.autodesign import (
    DeploymentGoal,
    DeploymentPlanner,
    DesignQuery,
    adapt_design,
    enumerate_sites,
    find_design,
    select_designs,
    sites_facing_room,
    sites_seeing_point,
)
from repro.core.errors import ServiceError
from repro.core.units import ghz
from repro.experiments import build_scenario
from repro.orchestrator import Adam
from repro.surfaces import SignalProperty


class TestDesignDB:
    def test_band_filtering(self):
        specs = select_designs(DesignQuery(frequency_hz=ghz(2.4)))
        names = {s.design for s in specs}
        assert "LAIA" in names
        assert "mmWall" not in names

    def test_reconfigurable_filter(self):
        passive = select_designs(
            DesignQuery(frequency_hz=ghz(60), reconfigurable=False)
        )
        assert {s.design for s in passive} == {"MilliMirror", "AutoMS"}
        assert all(s.is_passive for s in passive)

    def test_cost_ceiling(self):
        cheap = select_designs(
            DesignQuery(
                frequency_hz=ghz(60), max_cost_per_element_usd=0.001
            )
        )
        assert {s.design for s in cheap} == {"AutoMS"}

    def test_property_filter(self):
        pol = select_designs(
            DesignQuery(
                frequency_hz=ghz(2.4),
                properties=(SignalProperty.POLARIZATION,),
            )
        )
        assert {s.design for s in pol} == {"LLAMA"}

    def test_sorted_by_unit_cost(self):
        specs = select_designs(DesignQuery(frequency_hz=ghz(24)))
        costs = [s.cost_per_element_usd for s in specs]
        assert costs == sorted(costs)

    def test_adapt_design_shifts_band(self):
        spec = adapt_design(DesignQuery(frequency_hz=ghz(10)))
        assert spec.in_band(ghz(10))
        assert "adapted" in spec.notes
        assert "@10GHz" in spec.design

    def test_find_design_prefers_catalog(self):
        spec = find_design(DesignQuery(frequency_hz=ghz(60)))
        assert "@" not in spec.design

    def test_adapt_rejects_impossible(self):
        with pytest.raises(ServiceError):
            adapt_design(
                DesignQuery(
                    frequency_hz=ghz(10), max_cost_per_element_usd=1e-9
                )
            )

    def test_query_validation(self):
        with pytest.raises(ServiceError):
            DesignQuery(frequency_hz=0.0)
        with pytest.raises(ServiceError):
            DesignQuery(frequency_hz=ghz(5), properties=())


class TestSites:
    @pytest.fixture()
    def scenario(self):
        return build_scenario()

    def test_enumerate_covers_walls(self, scenario):
        sites = enumerate_sites(scenario.env, spacing_m=1.0)
        assert len(sites) > 10
        names = {s.wall_name for s in sites}
        assert "north-exterior" in names
        # Normals point into the floor plan.
        lo, hi = scenario.env.bounds()
        interior = (lo + hi) / 2.0
        for site in sites:
            assert float(np.dot(interior - site.center, site.normal)) > -2.0

    def test_mount_height(self, scenario):
        sites = enumerate_sites(scenario.env, height_m=1.7)
        assert all(s.center[2] == pytest.approx(1.7) for s in sites)

    def test_facing_room_filter(self, scenario):
        sites = enumerate_sites(scenario.env, spacing_m=1.0)
        facing = sites_facing_room(scenario.env, sites, "bedroom")
        assert facing
        assert len(facing) < len(sites)
        # Sites on the far west wall can't see much of the bedroom.
        for site in facing:
            assert site.wall_name != "west-exterior"

    def test_seeing_point_filter(self, scenario):
        sites = enumerate_sites(scenario.env, spacing_m=1.0)
        hearing = sites_seeing_point(
            scenario.env, sites, scenario.ap.position, max_loss_db=10.0
        )
        assert hearing
        assert len(hearing) < len(sites)

    def test_spacing_validation(self, scenario):
        with pytest.raises(ValueError):
            enumerate_sites(scenario.env, spacing_m=0.0)


class TestPlanner:
    @pytest.fixture()
    def planner(self):
        scenario = build_scenario()
        return scenario, DeploymentPlanner(
            scenario.env,
            scenario.ap,
            optimizer=Adam(max_iterations=50),
            size_ladder=(8, 16, 32),
            max_sites=3,
            grid_spacing_m=1.0,
        )

    def test_plans_meet_reachable_target(self, planner):
        scenario, p = planner
        goal = DeploymentGoal(
            room_id="bedroom",
            target_median_snr_db=15.0,
            frequency_hz=ghz(28),
            require_reconfigurable=True,
        )
        plans = p.plan(goal)
        assert plans[0].meets_target
        assert plans[0].predicted_median_snr_db >= 15.0
        # Ranked by cost among target-meeting plans.
        meeting = [x for x in plans if x.meets_target]
        costs = [x.cost_usd for x in meeting]
        assert costs == sorted(costs)

    def test_best_effort_when_target_unreachable(self, planner):
        scenario, p = planner
        goal = DeploymentGoal(
            room_id="bedroom",
            target_median_snr_db=80.0,  # impossible
            frequency_hz=ghz(28),
            require_reconfigurable=True,
        )
        plans = p.plan(goal)
        assert all(not x.meets_target for x in plans)

    def test_constraints_bind(self, planner):
        scenario, p = planner
        goal = DeploymentGoal(
            room_id="bedroom",
            target_median_snr_db=15.0,
            frequency_hz=ghz(28),
            require_reconfigurable=True,
            max_cost_usd=200.0,  # only the 8x8 fits ($160)
        )
        plans = p.plan(goal)
        assert all(x.cost_usd <= 200.0 for x in plans)

    def test_describe(self, planner):
        scenario, p = planner
        goal = DeploymentGoal(
            room_id="bedroom",
            target_median_snr_db=10.0,
            frequency_hz=ghz(28),
            require_reconfigurable=True,
        )
        text = p.plan(goal)[0].describe()
        assert "dB median" in text and "$" in text

    def test_goal_validation(self):
        with pytest.raises(ServiceError):
            DeploymentGoal("r", 20.0, frequency_hz=0.0)
        with pytest.raises(ServiceError):
            DeploymentGoal("r", 20.0, frequency_hz=ghz(28), max_cost_usd=0.0)
        with pytest.raises(ServiceError):
            DeploymentGoal("r", 20.0, frequency_hz=ghz(28), max_area_m2=0.0)
