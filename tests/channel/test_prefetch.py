"""Speculative leg prefetch: warm-only semantics, telemetry, identity.

The contract: ``prefetch`` only warms the leg LRU.  A build whose plan
lands on warmed keys serves them as ordinary leg-cache hits (counted
once as ``channel.prefetch_hits``); warmed legs invalidated or evicted
before any build consumes them count as ``channel.prefetch_wasted``;
and assembled models are bit-identical whether legs were traced
speculatively, inline, serially, or through a thread pool.
"""

import numpy as np
import pytest

from repro.channel import ChannelSimulator
from repro.core.errors import SimulationError
from repro.core.units import ghz
from repro.geometry import HUMAN, Box, two_room_apartment, vec3
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


def test_prefetch_then_build_retraces_nothing(
    simulator, ap, bedroom_points, single_prog
):
    traced = simulator.prefetch(
        ap, bedroom_points, [single_prog], legs=("direct", "a2s", "s2p", "s2s")
    )
    assert traced > 0
    retraced_before = simulator.leg_cache_stats[1]
    simulator.build(ap, bedroom_points, [single_prog])
    # Every leg the build needed was speculatively warmed.
    assert simulator.leg_cache_stats[1] == retraced_before
    prefetched, hits, wasted = simulator.prefetch_stats
    assert prefetched == traced
    assert wasted == 0
    assert hits > 0
    assert simulator.telemetry.get_counter("channel.prefetch_hits") == hits
    assert simulator.telemetry.get_counter("channel.prefetch_legs") == traced


def test_prefetch_hits_counted_once(simulator, ap, bedroom_points, single_prog):
    simulator.prefetch(ap, bedroom_points, [single_prog])
    simulator.build(ap, bedroom_points, [single_prog])
    hits_after_first = simulator.prefetch_stats[1]
    # A second identical build is a model-cache hit and must not
    # double-count the speculative legs.
    simulator.build(ap, bedroom_points, [single_prog])
    assert simulator.prefetch_stats[1] == hits_after_first


def test_prefetch_is_bit_identical_to_inline(env, ap, bedroom_points, single_prog):
    warm = ChannelSimulator(env, FREQ)
    warm.prefetch(ap, bedroom_points, [single_prog])
    a = warm.build(ap, bedroom_points, [single_prog])
    cold = ChannelSimulator(two_room_apartment(), FREQ)
    b = cold.build(ap, bedroom_points, [single_prog])
    assert float(np.abs(a.direct - b.direct).max()) == 0.0
    sid = single_prog.panel_id
    assert (
        float(np.abs(a.surface_to_points[sid] - b.surface_to_points[sid]).max())
        == 0.0
    )
    assert (
        float(np.abs(a.ap_to_surface[sid] - b.ap_to_surface[sid]).max()) == 0.0
    )


def test_unused_prefetched_legs_wasted_on_purge(
    simulator, env, ap, bedroom_points, single_prog
):
    simulator.prefetch(ap, bedroom_points, [single_prog])
    # A person appears before any build consumes the warmed legs: the
    # attributed mutation purges at least the unbounded direct leg.
    env.add_dynamic_box(
        "person", Box(vec3(6, 2, 0), vec3(6.5, 2.5, 1.8), HUMAN)
    )
    simulator.build(ap, bedroom_points, [single_prog])
    _, _, wasted = simulator.prefetch_stats
    assert wasted > 0
    assert (
        simulator.telemetry.get_counter("channel.prefetch_wasted") == wasted
    )


def test_unused_prefetched_legs_wasted_on_eviction(env, ap, single_prog):
    sim = ChannelSimulator(env, FREQ, leg_cache_size=4)
    target = np.array([[6.5, 2.0, 1.0]])
    sim.prefetch(ap, target, [single_prog])
    # Churn through enough other point sets to evict the warmed legs.
    for i in range(4):
        sim.build(ap, np.array([[6.0 + 0.1 * i, 2.5, 1.0]]), [single_prog])
    assert sim.prefetch_stats[2] > 0


def test_prefetch_noop_without_leg_cache(env, ap, bedroom_points, single_prog):
    sim = ChannelSimulator(env, FREQ, leg_cache_size=0)
    assert sim.prefetch(ap, bedroom_points, [single_prog]) == 0
    assert sim.prefetch_stats == (0, 0, 0)


def test_prefetch_skips_already_cached_legs(
    simulator, ap, bedroom_points, single_prog
):
    simulator.build(ap, bedroom_points, [single_prog])
    assert simulator.prefetch(ap, bedroom_points, [single_prog]) == 0


def test_prefetch_leg_family_selection(simulator, ap, bedroom_points, single_prog):
    traced = simulator.prefetch(
        ap, bedroom_points, [single_prog], legs=("s2p",)
    )
    assert traced == 1  # one panel: exactly its surface→points leg
    kinds = {
        e.attrs["kind"] for e in simulator.telemetry.events("leg-trace")
    }
    assert kinds == {"surface-to-points"}


def test_prefetch_marks_traces_speculative(simulator, ap, bedroom_points, single_prog):
    simulator.prefetch(
        ap, bedroom_points, [single_prog], legs=("direct", "a2s", "s2p", "s2s")
    )
    events = simulator.telemetry.events("leg-trace")
    assert events and all(e.attrs["speculative"] for e in events)
    simulator.build(ap, bedroom_points, [single_prog])
    inline = [
        e
        for e in simulator.telemetry.events("leg-trace")
        if not e.attrs["speculative"]
    ]
    assert not inline  # nothing left to trace inline


def test_prefetch_rejects_duplicate_panel_ids(simulator, ap, bedroom_points, single_prog):
    clone = SurfacePanel(
        single_prog.panel_id,
        GENERIC_PROGRAMMABLE_28,
        8,
        8,
        single_prog.center + np.array([0.5, 0.0, 0.0]),
        single_prog.normal,
    )
    with pytest.raises(SimulationError):
        simulator.prefetch(ap, bedroom_points, [single_prog, clone])


def test_invalidate_resets_prefetch_stats(simulator, ap, bedroom_points, single_prog):
    simulator.prefetch(ap, bedroom_points, [single_prog])
    simulator.build(ap, bedroom_points, [single_prog])
    simulator.invalidate()
    assert simulator.prefetch_stats == (0, 0, 0)


def test_parallel_prefetch_identical_results_and_telemetry(env, ap, bedroom_points, single_prog):
    serial = ChannelSimulator(env, FREQ, parallel_workers=0)
    pooled = ChannelSimulator(
        two_room_apartment(), FREQ, parallel_workers=4
    )
    serial.prefetch(ap, bedroom_points, [single_prog])
    pooled.prefetch(ap, bedroom_points, [single_prog])
    a = serial.build(ap, bedroom_points, [single_prog])
    b = pooled.build(ap, bedroom_points, [single_prog])
    assert float(np.abs(a.direct - b.direct).max()) == 0.0
    # Sim-only telemetry (event kinds and order) matches exactly.
    kinds_a = [
        e.attrs["kind"] for e in serial.telemetry.events("leg-trace")
    ]
    kinds_b = [
        e.attrs["kind"] for e in pooled.telemetry.events("leg-trace")
    ]
    assert kinds_a == kinds_b
    assert serial.prefetch_stats == pooled.prefetch_stats
