"""Incremental leg-level channel caching: golden equivalence + telemetry.

The contract under test: any sequence of client moves, panel changes,
and attributed environment mutations served through the leg cache must
produce a :class:`ChannelModel` bit-identical (asserted at exact 0.0,
accepted up to 1e-12) to a from-scratch monolithic build, while
re-tracing strictly fewer legs than the total.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.channel import ChannelSimulator, ula_node
from repro.core.units import ghz
from repro.geometry import HUMAN, Box, apartment_sites, two_room_apartment, vec3
from repro.surfaces import (
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    SurfacePanel,
)

FREQ = ghz(28)


def make_panels():
    sites = apartment_sites()
    return [
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            12,
            12,
            sites.single_surface_center,
            sites.single_surface_normal,
        ),
        SurfacePanel(
            "passive",
            GENERIC_PASSIVE_28,
            10,
            10,
            sites.passive_center,
            sites.passive_normal,
        ),
        SurfacePanel(
            "prog",
            GENERIC_PROGRAMMABLE_28,
            8,
            8,
            sites.programmable_center,
            sites.programmable_normal,
        ),
    ]


def make_ap():
    sites = apartment_sites()
    return ula_node(
        "ap", sites.ap_position, 4, FREQ, axis=(0, 0, 1), boresight=(1, 0.3, 0)
    )


def model_max_diff(a, b):
    """Max abs difference across every leg tensor of two models."""
    assert set(a.ap_to_surface) == set(b.ap_to_surface)
    assert set(a.surface_to_surface) == set(b.surface_to_surface)
    diffs = [float(np.abs(a.direct - b.direct).max())]
    for sid in a.ap_to_surface:
        diffs.append(
            float(np.abs(a.ap_to_surface[sid] - b.ap_to_surface[sid]).max())
        )
        diffs.append(
            float(
                np.abs(
                    a.surface_to_points[sid] - b.surface_to_points[sid]
                ).max()
            )
        )
    for key in a.surface_to_surface:
        diffs.append(
            float(
                np.abs(
                    a.surface_to_surface[key] - b.surface_to_surface[key]
                ).max()
            )
        )
    return max(diffs)


def monolithic_model(points, mutate=None):
    """A from-scratch build on a fresh environment/panels/simulator."""
    env = two_room_apartment()
    panels = make_panels()
    sim = ChannelSimulator(env, FREQ, leg_cache_size=0)
    if mutate is not None:
        mutate(env, panels)
    return sim.build(make_ap(), points, panels)


@pytest.fixture()
def points(env):
    return env.room("bedroom").grid(1.0)


class TestGoldenEquivalence:
    def test_client_move_reuses_surface_legs(self, env, points):
        sim = ChannelSimulator(env, FREQ)
        panels = make_panels()
        ap = make_ap()
        first = sim.build(ap, points, panels)
        total = first.num_legs
        moved = points + np.array([0.4, 0.25, 0.0])
        model = sim.build(ap, moved, panels)
        retraced = sim.leg_cache_stats[1] - total
        # direct + one surface→points leg per panel change; the
        # AP→surface and surface→surface legs all come from cache.
        assert retraced == 1 + len(panels)
        assert retraced < total
        golden = monolithic_model(moved)
        assert model_max_diff(model, golden) <= 1e-12

    def test_single_panel_mutation_partial_retrace(self, env, points):
        sim = ChannelSimulator(env, FREQ)
        panels = make_panels()
        ap = make_ap()
        first = sim.build(ap, points, panels)
        total = first.num_legs
        offset = np.array([0.0, 0.25, 0.0])

        def moved_panel(template):
            return SurfacePanel(
                template.panel_id,
                template.spec,
                template.shape[0],
                template.shape[1],
                np.asarray(template.center) + offset,
                template.normal,
            )

        panels[2] = moved_panel(panels[2])

        def mutate(env2, panels2):
            panels2[2] = moved_panel(panels2[2])

        model = sim.build(ap, points, panels)
        retraced = sim.leg_cache_stats[1] - total
        assert 0 < retraced < total
        golden = monolithic_model(points, mutate)
        assert model_max_diff(model, golden) <= 1e-12

    def test_far_obstacle_mutation_keeps_surface_legs(self, env, points):
        sim = ChannelSimulator(env, FREQ)
        panels = make_panels()
        ap = make_ap()
        total = sim.build(ap, points, panels).num_legs
        box = Box(vec3(0.2, 0.2, 0), vec3(0.7, 0.7, 1.8), HUMAN)
        env.add_dynamic_box("far-person", box)

        model = sim.build(ap, points, panels)
        retraced = sim.leg_cache_stats[1] - total
        # Only the reflection-enriched direct leg (unbounded corridor)
        # is purged; every surface leg survives the far-away mutation.
        assert retraced == 1
        golden = monolithic_model(
            points, lambda env2, _: env2.add_dynamic_box("far-person", box)
        )
        assert model_max_diff(model, golden) == 0.0

    def test_corridor_obstacle_mutation_retraces_crossed_legs(
        self, env, points
    ):
        sim = ChannelSimulator(env, FREQ)
        panels = make_panels()
        ap = make_ap()
        total = sim.build(ap, points, panels).num_legs
        box = Box(vec3(6, 2, 0), vec3(6.5, 2.5, 1.8), HUMAN)
        env.add_dynamic_box("person", box)

        model = sim.build(ap, points, panels)
        retraced = sim.leg_cache_stats[1] - total
        assert 0 < retraced < total
        golden = monolithic_model(
            points, lambda env2, _: env2.add_dynamic_box("person", box)
        )
        assert model_max_diff(model, golden) <= 1e-12

    def test_unattributed_mutation_full_purge(self, env, points):
        sim = ChannelSimulator(env, FREQ)
        panels = make_panels()
        ap = make_ap()
        total = sim.build(ap, points, panels).num_legs
        env.record_mutation()  # no region: everything must go
        sim.build(ap, points, panels)
        assert sim.leg_cache_stats[1] == 2 * total
        assert sim.telemetry.get_counter("channel.leg_cache_full_purges") == 1


class TestParallelTracing:
    @pytest.mark.parametrize("workers", [2, 3, 8])
    def test_bit_identical_to_serial(self, workers, points):
        serial = monolithic_model(points)
        sim = ChannelSimulator(
            two_room_apartment(), FREQ, parallel_workers=workers
        )
        parallel = sim.build(make_ap(), points, make_panels())
        assert model_max_diff(parallel, serial) == 0.0

    def test_incremental_rebuild_parallel_matches(self, points):
        sim = ChannelSimulator(two_room_apartment(), FREQ, parallel_workers=4)
        ap = make_ap()
        panels = make_panels()
        sim.build(ap, points, panels)
        moved = points + np.array([0.4, 0.25, 0.0])
        model = sim.build(ap, moved, panels)
        golden = monolithic_model(moved)
        assert model_max_diff(model, golden) == 0.0

    def test_sim_only_export_deterministic(self, points):
        """Parallel tracing must not leak nondeterminism into telemetry."""

        def run():
            sim = ChannelSimulator(
                two_room_apartment(), FREQ, parallel_workers=4
            )
            ap = make_ap()
            panels = make_panels()
            sim.build(ap, points, panels)
            sim.build(ap, points + np.array([0.4, 0.25, 0.0]), panels)
            sim.env.add_dynamic_box(
                "person", Box(vec3(6, 2, 0), vec3(6.5, 2.5, 1.8), HUMAN)
            )
            sim.build(ap, points, panels)
            return sim.telemetry.export_jsonl(sim_only=True)

        assert run() == run()


class TestLegCacheTelemetry:
    def test_counters_across_move_rebuild_invalidate(self, env, points):
        sim = ChannelSimulator(env, FREQ)
        tel = sim.telemetry
        panels = make_panels()
        ap = make_ap()
        total = sim.build(ap, points, panels).num_legs
        assert tel.get_counter("channel.legs_retraced") == total
        assert tel.get_counter("channel.leg_cache_hits") == 0

        # Client move: partial rebuild, surface legs served from cache.
        moved = points + np.array([0.4, 0.25, 0.0])
        sim.build(ap, moved, panels)
        reused = total - (1 + len(panels))
        assert tel.get_counter("channel.leg_cache_hits") == reused
        assert tel.get_counter("channel.legs_retraced") == total + 1 + len(panels)
        assert tel.get_counter("channel.partial_rebuilds") == 1
        assert tel.snapshot().gauges["channel.leg_cache_size"] == total + 1 + len(
            panels
        )

        # Environment mutation: stale model purged eagerly, affected
        # legs purged from the leg cache.
        env.add_dynamic_box(
            "person", Box(vec3(6, 2, 0), vec3(6.5, 2.5, 1.8), HUMAN)
        )
        sim.build(ap, moved, panels)
        assert tel.get_counter("channel.cache_stale_evictions") == 2
        assert tel.get_counter("channel.legs_purged") > 0

        # Invalidate: epoch reset, monotonic counters keep history.
        invalidations_before = tel.get_counter("channel.cache_invalidations")
        sim.invalidate()
        assert sim.leg_cache_stats == (0, 0)
        assert tel.get_counter("channel.cache_invalidations") == (
            invalidations_before + 1
        )
        assert tel.snapshot().gauges["channel.leg_cache_size"] == 0
        retraced_before = tel.get_counter("channel.legs_retraced")
        sim.build(ap, moved, panels)
        assert tel.get_counter("channel.legs_retraced") == retraced_before + total

    def test_lru_bound_on_legs(self, env, points):
        sim = ChannelSimulator(env, FREQ, leg_cache_size=4)
        sim.build(make_ap(), points, make_panels())
        assert len(sim._legs) <= 4
        assert sim.telemetry.get_counter("channel.leg_cache_evictions") > 0

    def test_leg_cache_disabled_is_monolithic(self, env, points):
        sim = ChannelSimulator(env, FREQ, leg_cache_size=0)
        ap = make_ap()
        panels = make_panels()
        total = sim.build(ap, points, panels).num_legs
        sim.build(ap, points + np.array([0.4, 0.0, 0.0]), panels)
        assert sim.leg_cache_stats == (0, 2 * total)
        assert sim.telemetry.get_counter("channel.leg_cache_hits") == 0


class TestModelCacheEviction:
    def test_evicts_before_insert(self, env, points, single_prog):
        """The model cache never transiently exceeds its bound."""
        observed = []

        class Watched(OrderedDict):
            def __setitem__(self, key, value):
                super().__setitem__(key, value)
                observed.append(len(self))

        sim = ChannelSimulator(env, FREQ, cache_size=1)
        sim._cache = Watched()
        ap = make_ap()
        sim.build(ap, points, [single_prog])
        sim.build(ap, points + np.array([0.3, 0.0, 0.0]), [single_prog])
        sim.build(ap, points + np.array([0.6, 0.0, 0.0]), [single_prog])
        assert max(observed) == 1
        assert sim.telemetry.get_counter("channel.cache_evictions") == 2

    def test_reinserted_entry_still_hits(self, env, points, single_prog):
        sim = ChannelSimulator(env, FREQ, cache_size=1)
        ap = make_ap()
        sim.build(ap, points, [single_prog])
        sim.build(ap, points, [single_prog])
        assert sim.cache_stats == (1, 1)
