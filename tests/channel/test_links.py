"""Leg-builder physics: Friis scaling, patterns, penetration, efficiency."""

import math

import numpy as np
import pytest

from repro.channel import (
    elements_to_elements,
    elements_to_points,
    node_to_elements,
    node_to_points,
    single_antenna_node,
)
from repro.core.units import ghz, wavelength
from repro.em import friis_amplitude
from repro.geometry import CONCRETE, Environment, vec3
from repro.surfaces import (
    GENERIC_PROGRAMMABLE_28,
    OperationMode,
    SignalProperty,
    SurfacePanel,
    SurfaceSpec,
)

FREQ = ghz(28)


@pytest.fixture()
def empty_env():
    return Environment(name="empty")


@pytest.fixture()
def panel():
    return SurfacePanel(
        "p", GENERIC_PROGRAMMABLE_28, 6, 6, vec3(5, 0, 1.0), vec3(-1, 0, 0)
    )


class TestNodeToPoints:
    def test_free_space_matches_friis(self, empty_env):
        node = single_antenna_node("tx", vec3(0, 0, 1))
        points = np.array([[3.0, 0.0, 1.0]])
        h = node_to_points(
            empty_env, node, points, FREQ, include_reflections=False
        )
        assert abs(h[0, 0]) == pytest.approx(friis_amplitude(3.0, FREQ))

    def test_phase_matches_path_length(self, empty_env):
        node = single_antenna_node("tx", vec3(0, 0, 1))
        lam = wavelength(FREQ)
        d = 7 * lam  # integer wavelengths → zero phase
        h = node_to_points(
            empty_env,
            node,
            np.array([[d, 0.0, 1.0]]),
            FREQ,
            include_reflections=False,
        )
        assert np.angle(h[0, 0]) == pytest.approx(0.0, abs=1e-6)

    def test_wall_penetration_attenuates(self, empty_env):
        empty_env.add_wall_2d((1.5, -2), (1.5, 2), CONCRETE)
        node = single_antenna_node("tx", vec3(0, 0, 1))
        h = node_to_points(
            empty_env,
            node,
            np.array([[3.0, 0.0, 1.0]]),
            FREQ,
            include_reflections=False,
        )
        expected = friis_amplitude(3.0, FREQ) * CONCRETE.penetration_amplitude(
            FREQ
        )
        assert abs(h[0, 0]) == pytest.approx(expected, rel=1e-9)

    def test_reflections_add_paths(self, empty_env):
        empty_env.add_wall_2d((0, 2), (6, 2), CONCRETE, name="mirror")
        node = single_antenna_node("tx", vec3(0, 0, 1))
        points = np.array([[4.0, 0.0, 1.0]])
        h_direct = node_to_points(
            empty_env, node, points, FREQ, include_reflections=False
        )
        h_with = node_to_points(
            empty_env, node, points, FREQ, include_reflections=True
        )
        assert abs(h_with[0, 0] - h_direct[0, 0]) > 0.0


class TestElementLegs:
    def test_reciprocity_between_node_and_element_legs(self, empty_env, panel):
        """Same leg traced from either side has the same gain."""
        node = single_antenna_node("tx", vec3(0, 0, 1.0))
        a = node_to_elements(
            empty_env, node, panel, FREQ, apply_efficiency=False
        )  # (1, E)
        b = elements_to_points(
            empty_env, panel, node.positions, FREQ
        )  # (1, E)
        assert np.allclose(a[0], b[0], rtol=1e-9)

    def test_efficiency_applied_on_incoming_leg(self, empty_env, panel):
        node = single_antenna_node("tx", vec3(0, 0, 1.0))
        with_eff = node_to_elements(empty_env, node, panel, FREQ)
        without = node_to_elements(
            empty_env, node, panel, FREQ, apply_efficiency=False
        )
        eff = panel.spec.efficiency(FREQ)
        assert np.allclose(with_eff, without * eff)

    def test_out_of_band_carrier_kills_leg(self, empty_env, panel):
        node = single_antenna_node("tx", vec3(0, 0, 1.0))
        h = node_to_elements(empty_env, node, panel, ghz(60))
        assert np.allclose(h, 0.0)

    def test_back_hemisphere_blind_for_reflective(self, empty_env, panel):
        # Panel faces -x; a node behind it (+x side) gets zero gains.
        node = single_antenna_node("tx", vec3(8.0, 0, 1.0))
        h = node_to_elements(empty_env, node, panel, FREQ)
        assert np.allclose(h, 0.0)

    def test_transmissive_panel_sees_both_sides(self, empty_env):
        spec = SurfaceSpec(
            design="trans",
            band_hz=(ghz(27), ghz(29)),
            properties=frozenset([SignalProperty.PHASE]),
            operation_mode=OperationMode.TRANSMISSIVE,
            reconfigurable=True,
        )
        panel = SurfacePanel("t", spec, 6, 6, vec3(5, 0, 1.0), vec3(-1, 0, 0))
        behind = single_antenna_node("tx", vec3(8.0, 0, 1.0))
        h = node_to_elements(empty_env, behind, panel, FREQ)
        assert np.all(np.abs(h) > 0.0)

    def test_surface_to_surface_shape_and_symmetry(self, empty_env, panel):
        other = SurfacePanel(
            "q", GENERIC_PROGRAMMABLE_28, 4, 4, vec3(0, 0, 1.0), vec3(1, 0, 0)
        )
        fwd = elements_to_elements(empty_env, other, panel, FREQ)
        rev = elements_to_elements(empty_env, panel, other, FREQ)
        assert fwd.shape == (16, 36)
        assert rev.shape == (36, 16)
        # Same efficiency both ways here (identical specs) → transpose
        # symmetry of the geometric part.
        assert np.allclose(fwd, rev.T, rtol=1e-9)

    def test_inter_surface_amplitude_scales_with_distance(self, empty_env, panel):
        near = SurfacePanel(
            "n", GENERIC_PROGRAMMABLE_28, 4, 4, vec3(1, 0, 1.0), vec3(1, 0, 0)
        )
        far = SurfacePanel(
            "f", GENERIC_PROGRAMMABLE_28, 4, 4, vec3(-3, 0, 1.0), vec3(1, 0, 0)
        )
        g_near = np.abs(elements_to_elements(empty_env, near, panel, FREQ)).mean()
        g_far = np.abs(elements_to_elements(empty_env, far, panel, FREQ)).mean()
        assert g_near > g_far
