"""ChannelModel: evaluation vs linearization consistency."""

import numpy as np
import pytest

from repro.channel import ChannelModel, LinearChannelForm
from repro.core.errors import SimulationError


def random_model(rng, k=5, m=3, surfaces=(("s1", 8), ("s2", 6)), pairs=True):
    ap_to_surface = {
        sid: rng.normal(size=(m, e)) + 1j * rng.normal(size=(m, e))
        for sid, e in surfaces
    }
    surface_to_points = {
        sid: rng.normal(size=(k, e)) + 1j * rng.normal(size=(k, e))
        for sid, e in surfaces
    }
    sts = {}
    if pairs and len(surfaces) > 1:
        (s1, e1), (s2, e2) = surfaces[:2]
        g = rng.normal(size=(e1, e2)) + 1j * rng.normal(size=(e1, e2))
        sts[(s1, s2)] = g
        sts[(s2, s1)] = g.T
    return ChannelModel(
        points=rng.normal(size=(k, 3)),
        direct=rng.normal(size=(k, m)) + 1j * rng.normal(size=(k, m)),
        ap_to_surface=ap_to_surface,
        surface_to_points=surface_to_points,
        surface_to_surface=sts,
        frequency_hz=28e9,
    )


def random_configs(rng, model):
    return {
        sid: np.exp(1j * rng.uniform(0, 2 * np.pi, model.num_elements(sid)))
        for sid in model.surface_ids
    }


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def test_evaluate_shape(rng):
    model = random_model(rng)
    h = model.evaluate(random_configs(rng, model))
    assert h.shape == (5, 3)


def test_evaluate_zero_configs_gives_direct(rng):
    model = random_model(rng)
    zeros = {sid: np.zeros(model.num_elements(sid)) for sid in model.surface_ids}
    assert np.allclose(model.evaluate(zeros), model.direct)


def test_evaluate_brute_force_match(rng):
    """Matrix evaluation equals the explicit double sum."""
    model = random_model(rng, k=2, m=2, surfaces=(("a", 3), ("b", 4)))
    cfg = random_configs(rng, model)
    h = model.evaluate(cfg)
    for k in range(2):
        for m in range(2):
            expected = model.direct[k, m]
            for sid in model.surface_ids:
                for e in range(model.num_elements(sid)):
                    expected += (
                        model.ap_to_surface[sid][m, e]
                        * cfg[sid][e]
                        * model.surface_to_points[sid][k, e]
                    )
            for (sid, tid), s_st in model.surface_to_surface.items():
                for e in range(model.num_elements(sid)):
                    for f in range(model.num_elements(tid)):
                        expected += (
                            model.ap_to_surface[sid][m, e]
                            * cfg[sid][e]
                            * s_st[e, f]
                            * cfg[tid][f]
                            * model.surface_to_points[tid][k, f]
                        )
            assert h[k, m] == pytest.approx(expected, rel=1e-10)


@pytest.mark.parametrize("sid", ["s1", "s2"])
def test_linear_form_matches_evaluate(rng, sid):
    model = random_model(rng)
    cfg = random_configs(rng, model)
    form = model.linear_form(sid, cfg)
    assert np.allclose(form.evaluate(cfg[sid]), model.evaluate(cfg))


def test_linear_form_is_linear(rng):
    model = random_model(rng)
    cfg = random_configs(rng, model)
    form = model.linear_form("s1", cfg)
    x1 = cfg["s1"]
    x2 = np.exp(1j * rng.uniform(0, 2 * np.pi, x1.shape))
    lhs = form.evaluate(x1 + x2) - form.offset
    rhs = (form.evaluate(x1) - form.offset) + (form.evaluate(x2) - form.offset)
    assert np.allclose(lhs, rhs)


def test_linear_form_three_surfaces(rng):
    model = random_model(
        rng, surfaces=(("a", 3), ("b", 4), ("c", 5)), pairs=False
    )
    # Add one cascade not involving the linearized surface.
    e_b, e_c = 4, 5
    model.surface_to_surface[("b", "c")] = rng.normal(
        size=(e_b, e_c)
    ) + 1j * rng.normal(size=(e_b, e_c))
    cfg = random_configs(rng, model)
    form = model.linear_form("a", cfg)
    assert np.allclose(form.evaluate(cfg["a"]), model.evaluate(cfg))


def test_restricted_points(rng):
    model = random_model(rng)
    cfg = random_configs(rng, model)
    sub = model.restricted([0, 2])
    assert np.allclose(sub.evaluate(cfg), model.evaluate(cfg)[[0, 2]])
    form = model.linear_form("s1", cfg).restricted([1, 3])
    assert np.allclose(
        form.evaluate(cfg["s1"]), model.evaluate(cfg)[[1, 3]]
    )


def test_missing_config_rejected(rng):
    model = random_model(rng)
    cfg = random_configs(rng, model)
    del cfg["s2"]
    with pytest.raises(SimulationError):
        model.evaluate(cfg)


def test_wrong_config_shape_rejected(rng):
    model = random_model(rng)
    cfg = random_configs(rng, model)
    cfg["s1"] = cfg["s1"][:-1]
    with pytest.raises(SimulationError):
        model.evaluate(cfg)


def test_linear_form_validation():
    with pytest.raises(SimulationError):
        LinearChannelForm("x", np.zeros((2, 2)), np.zeros((2, 2)))
    with pytest.raises(SimulationError):
        LinearChannelForm("x", np.zeros((2, 2, 3)), np.zeros((2, 3)))
