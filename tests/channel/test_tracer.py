"""Vectorized tracer vs scalar geometry primitives."""

import numpy as np
import pytest

from repro.core.units import ghz
from repro.channel import (
    PanelObstacle,
    reflection_paths,
    segment_amplitude,
    segment_loss_db,
)
from repro.geometry import CONCRETE, DRYWALL, WOOD, Box, Environment, vec3
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


@pytest.fixture()
def env():
    e = Environment(name="tracer", ceiling_height=3.0)
    e.add_wall_2d((2, -5), (2, 5), CONCRETE, name="mid")
    e.add_wall_2d((0, 5), (4, 5), DRYWALL, name="top")
    return e


def test_segment_loss_matches_scalar_env(env):
    a = np.array([[0.0, 0.0, 1.0], [0.0, 6.0, 1.0]])
    b = np.array([[4.0, 0.0, 1.0], [4.0, 6.0, 1.0]])
    losses = segment_loss_db(env, a, b, FREQ)
    assert losses[0] == pytest.approx(
        env.penetration_loss_db(a[0], b[0], FREQ)
    )
    assert losses[1] == pytest.approx(
        env.penetration_loss_db(a[1], b[1], FREQ)
    )


def test_segment_loss_with_box(env):
    env.add_box(Box(vec3(3, -0.5, 0), vec3(3.5, 0.5, 2), WOOD))
    loss = segment_loss_db(
        env,
        np.array([[0.0, 0.0, 1.0]]),
        np.array([[4.0, 0.0, 1.0]]),
        FREQ,
    )[0]
    assert loss == pytest.approx(
        CONCRETE.penetration_loss_db(FREQ) + WOOD.penetration_loss_db(FREQ)
    )


def test_exclude_walls(env):
    wall = env.walls[0]
    loss = segment_loss_db(
        env,
        np.array([[0.0, 0.0, 1.0]]),
        np.array([[4.0, 0.0, 1.0]]),
        FREQ,
        exclude_walls=(wall,),
    )[0]
    assert loss == pytest.approx(0.0)


def test_amplitude_is_db_consistent(env):
    a = np.array([[0.0, 0.0, 1.0]])
    b = np.array([[4.0, 0.0, 1.0]])
    amp = segment_amplitude(env, a, b, FREQ)[0]
    loss = segment_loss_db(env, a, b, FREQ)[0]
    assert amp == pytest.approx(10 ** (-loss / 20))


def test_mismatched_shapes_rejected(env):
    with pytest.raises(ValueError):
        segment_loss_db(env, np.zeros((2, 3)), np.zeros((3, 3)), FREQ)


class TestReflection:
    def test_single_bounce_found(self, env):
        # Both points in the left half, bouncing off the concrete wall.
        paths = reflection_paths(env, vec3(0, 0, 1), vec3(0, 2, 1), FREQ)
        walls = {p.wall.name for p in paths}
        assert "mid" in walls

    def test_bounce_geometry_is_specular(self, env):
        paths = reflection_paths(env, vec3(0, 0, 1), vec3(0, 2, 1), FREQ)
        path = next(p for p in paths if p.wall.name == "mid")
        # Specular: bounce at y = 1 (midpoint by symmetry), x = 2.
        assert path.bounce_point[0] == pytest.approx(2.0)
        assert path.bounce_point[1] == pytest.approx(1.0)
        direct = np.linalg.norm(vec3(0, 0, 1) - vec3(0, 2, 1))
        assert path.total_length > direct

    def test_image_length(self, env):
        paths = reflection_paths(env, vec3(0, 0, 1), vec3(0, 2, 1), FREQ)
        path = next(p for p in paths if p.wall.name == "mid")
        # Image method: length equals distance from mirrored source.
        mirrored = path.wall.mirror_point(vec3(0, 0, 1))
        assert path.total_length == pytest.approx(
            float(np.linalg.norm(mirrored - vec3(0, 2, 1)))
        )

    def test_amplitude_includes_reflectivity(self, env):
        paths = reflection_paths(env, vec3(0, 0, 1), vec3(0, 2, 1), FREQ)
        path = next(p for p in paths if p.wall.name == "mid")
        assert path.amplitude_factor <= CONCRETE.reflectivity + 1e-9

    def test_no_bounce_when_wall_behind(self, env):
        # Points on opposite sides: mirror path would cross, not bounce.
        paths = reflection_paths(env, vec3(1, 0, 1), vec3(3, 0, 1), FREQ)
        assert all(p.wall.name != "mid" for p in paths)


class TestPanelObstacle:
    @pytest.fixture()
    def obstacle(self):
        panel = SurfacePanel(
            "blocker",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            vec3(1, 0, 1),
            vec3(1, 0, 0),
        )
        return PanelObstacle(panel)

    def test_crossing_detected(self, obstacle):
        a = np.array([[0.0, 0.0, 1.0]])
        b = np.array([[2.0, 0.0, 1.0]])
        assert obstacle.crossing_mask(a, b)[0]

    def test_miss_detected(self, obstacle):
        a = np.array([[0.0, 2.0, 1.0]])
        b = np.array([[2.0, 2.0, 1.0]])
        assert not obstacle.crossing_mask(a, b)[0]

    def test_parallel_segment(self, obstacle):
        a = np.array([[0.5, -1.0, 1.0]])
        b = np.array([[0.5, 1.0, 1.0]])
        assert not obstacle.crossing_mask(a, b)[0]

    def test_loss_uses_spec(self, obstacle):
        assert obstacle.loss_db(ghz(2.4)) == pytest.approx(
            GENERIC_PROGRAMMABLE_28.out_of_band_loss_db
        )
