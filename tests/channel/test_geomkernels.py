"""Golden equivalence: vectorized geometry kernels vs. per-obstacle loops.

The reference implementations below are the pre-vectorization
per-obstacle formulas, kept private to this test module.  Every
compiled kernel must reproduce them to 1e-9 on randomized environments,
including the degenerate geometry the epsilon guards exist for.
"""

import numpy as np
import pytest

from repro.channel.geomkernels import PanelStack, compiled_geometry
from repro.channel.tracer import (
    PanelObstacle,
    reflection_paths,
    segment_amplitude,
    segment_loss_db,
)
from repro.core.units import ghz
from repro.geometry import Box, two_room_apartment
from repro.geometry.environment import Environment
from repro.geometry.materials import BRICK, CONCRETE, DRYWALL

FREQ = ghz(28.0)
TOL = 1e-9
_EPS = 1e-9


# ----------------------------------------------------------------------
# reference per-obstacle implementations (the old scalar loop)
# ----------------------------------------------------------------------


def _ref_wall_mask(wall, a, b):
    p, q = wall.start[:2], wall.end[:2]
    s = q - p
    r = b[:, :2] - a[:, :2]
    denom = r[:, 0] * s[1] - r[:, 1] * s[0]
    ok = np.abs(denom) > _EPS
    safe = np.where(ok, denom, 1.0)
    ap = p[None, :] - a[:, :2]
    t = (ap[:, 0] * s[1] - ap[:, 1] * s[0]) / safe
    u = (ap[:, 0] * r[:, 1] - ap[:, 1] * r[:, 0]) / safe
    z = a[:, 2] + t * (b[:, 2] - a[:, 2])
    return (
        ok
        & (t > _EPS)
        & (t < 1.0 - _EPS)
        & (u >= -_EPS)
        & (u <= 1.0 + _EPS)
        & (z >= wall.z_min - _EPS)
        & (z <= wall.z_max + _EPS)
    )


def _ref_box_mask(box, a, b):
    d = b - a
    t_enter = np.zeros(a.shape[0])
    t_exit = np.ones(a.shape[0])
    inside_slabs = np.ones(a.shape[0], dtype=bool)
    for axis in range(3):
        da = d[:, axis]
        parallel = np.abs(da) < _EPS
        safe = np.where(parallel, 1.0, da)
        t1 = (box.lo[axis] - a[:, axis]) / safe
        t2 = (box.hi[axis] - a[:, axis]) / safe
        lo_t = np.minimum(t1, t2)
        hi_t = np.maximum(t1, t2)
        in_slab = (a[:, axis] >= box.lo[axis] - _EPS) & (
            a[:, axis] <= box.hi[axis] + _EPS
        )
        inside_slabs &= np.where(parallel, in_slab, True)
        t_enter = np.where(parallel, t_enter, np.maximum(t_enter, lo_t))
        t_exit = np.where(parallel, t_exit, np.minimum(t_exit, hi_t))
    return (
        inside_slabs
        & (t_enter < t_exit)
        & (t_exit > _EPS)
        & (t_enter < 1.0 - _EPS)
    )


def _ref_segment_loss_db(env, a, b, freq, panel_obstacles=(), exclude_walls=()):
    loss = np.zeros(a.shape[0])
    excluded = {id(w) for w in exclude_walls}
    for wall in env.walls:
        if id(wall) in excluded:
            continue
        mask = _ref_wall_mask(wall, a, b)
        if mask.any():
            loss[mask] += wall.material.penetration_loss_db(freq)
    for box in env.boxes:
        mask = _ref_box_mask(box, a, b)
        if mask.any():
            loss[mask] += box.material.penetration_loss_db(freq)
    for obstacle in panel_obstacles:
        mask = obstacle.crossing_mask(a, b)
        if mask.any():
            loss[mask] += obstacle.loss_db(freq)
    return loss


def _ref_reflection_paths(env, a, b, freq, panel_obstacles=()):
    a3 = np.asarray(a, dtype=float)
    b3 = np.asarray(b, dtype=float)
    paths = []
    for wall in env.reflective_walls():
        mirrored = wall.mirror_point(a3)
        bounce = wall.intersect_segment(mirrored, b3)
        if bounce is None:
            continue
        leg1 = float(np.linalg.norm(bounce - a3))
        leg2 = float(np.linalg.norm(b3 - bounce))
        if leg1 < _EPS or leg2 < _EPS:
            continue
        amp = wall.material.reflectivity
        for seg in ((a3, bounce), (bounce, b3)):
            loss = _ref_segment_loss_db(
                env,
                seg[0][None, :],
                seg[1][None, :],
                freq,
                panel_obstacles,
                exclude_walls=(wall,),
            )[0]
            amp *= 10.0 ** (-loss / 20.0)
        if amp < 1e-8:
            continue
        paths.append((wall, bounce, leg1 + leg2, amp))
    return paths


# ----------------------------------------------------------------------
# scene builders
# ----------------------------------------------------------------------


def random_environment(seed, num_walls=12, num_boxes=8):
    rng = np.random.default_rng(seed)
    env = Environment(f"golden-{seed}", ceiling_height=3.0)
    mats = [DRYWALL, CONCRETE, BRICK]
    for i in range(num_walls):
        p = rng.uniform(0, 20, 2)
        d = rng.uniform(-6, 6, 2)
        env.add_wall_2d(p, p + d, mats[i % 3], name=f"w{i}")
    for i in range(num_boxes):
        lo = rng.uniform(0, 18, 3) * np.array([1, 1, 0.1])
        size = rng.uniform(0.5, 3.0, 3)
        env.add_box(Box(lo=lo, hi=lo + size, material=mats[i % 3], name=f"b{i}"))
    return env, rng


def random_segments(rng, n=800):
    a = rng.uniform(0, 20, (n, 3)) * np.array([1, 1, 0.15])
    b = rng.uniform(0, 20, (n, 3)) * np.array([1, 1, 0.15])
    return a, b


# ----------------------------------------------------------------------
# golden tests
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_segment_loss_matches_loop_on_random_scene(seed):
    env, rng = random_environment(seed)
    a, b = random_segments(rng)
    ref = _ref_segment_loss_db(env, a, b, FREQ)
    vec = compiled_geometry(env).segment_loss_db(a, b, FREQ)
    np.testing.assert_allclose(vec, ref, atol=TOL, rtol=0)


@pytest.mark.parametrize("seed", [3, 11])
def test_crossing_matrices_match_per_obstacle_masks(seed):
    env, rng = random_environment(seed)
    a, b = random_segments(rng, n=500)
    compiled = compiled_geometry(env)
    walls = compiled.wall_crossing_matrix(a, b)
    for j, wall in enumerate(env.walls):
        np.testing.assert_array_equal(walls[:, j], _ref_wall_mask(wall, a, b))
    boxes = compiled.box_crossing_matrix(a, b)
    for j, box in enumerate(env.boxes):
        np.testing.assert_array_equal(boxes[:, j], _ref_box_mask(box, a, b))


def test_parallel_and_grazing_segments():
    """Epsilon-guarded degeneracies: parallel, collinear, in-plane rays."""
    env = Environment("degenerate", ceiling_height=3.0)
    env.add_wall_2d((2.0, 0.0), (2.0, 4.0), DRYWALL, name="vertical")
    env.add_wall_2d((0.0, 2.0), (4.0, 2.0), CONCRETE, name="horizontal")
    env.add_box(Box(lo=(5.0, 0.0, 0.0), hi=(6.0, 1.0, 2.0), material=BRICK))
    a = np.array(
        [
            [2.0, -1.0, 1.0],  # collinear with the vertical wall's line
            [2.0, 1.0, 0.5],   # runs *inside* the vertical wall plane
            [0.0, 2.0, 1.0],   # collinear with the horizontal wall
            [1.0, 0.0, 1.0],   # parallel to the vertical wall, offset
            [5.5, 0.5, -1.0],  # z-parallel ray up through the box
            [5.5, 0.5, 0.5],   # z-parallel, starting inside the box
            [4.5, 0.5, 0.5],   # z-parallel, outside the box's x-slab
            [2.0, 2.0, 1.0],   # endpoint exactly on both wall lines
            [1.9999999999, 1.0, 1.0],  # grazing the vertical wall plane
        ]
    )
    b = np.array(
        [
            [2.0, 5.0, 1.0],
            [2.0, 3.0, 2.5],
            [4.0, 2.0, 1.0],
            [1.0, 4.0, 1.0],
            [5.5, 0.5, 3.0],
            [5.5, 0.5, 1.5],
            [4.5, 0.5, 1.5],
            [3.0, 3.0, 1.0],
            [2.0000000001, 3.0, 1.0],
        ]
    )
    ref = _ref_segment_loss_db(env, a, b, FREQ)
    vec = compiled_geometry(env).segment_loss_db(a, b, FREQ)
    np.testing.assert_allclose(vec, ref, atol=TOL, rtol=0)
    compiled = compiled_geometry(env)
    for j, wall in enumerate(env.walls):
        np.testing.assert_array_equal(
            compiled.wall_crossing_matrix(a, b)[:, j],
            _ref_wall_mask(wall, a, b),
        )
    for j, box in enumerate(env.boxes):
        np.testing.assert_array_equal(
            compiled.box_crossing_matrix(a, b)[:, j],
            _ref_box_mask(box, a, b),
        )


@pytest.mark.parametrize("seed", [5, 21])
def test_excluded_reflector_walls(seed):
    env, rng = random_environment(seed)
    a, b = random_segments(rng, n=300)
    compiled = compiled_geometry(env)
    exclude = [env.walls[0], env.walls[3]]
    ref = _ref_segment_loss_db(env, a, b, FREQ, exclude_walls=exclude)
    vec = compiled.segment_loss_db(
        a, b, FREQ, exclude_wall_indices=compiled.wall_indices(exclude)
    )
    np.testing.assert_allclose(vec, ref, atol=TOL, rtol=0)


def test_tracer_wrappers_match_reference(simulator, ap, single_prog):
    """The public tracer API stays loop-equivalent through the kernels."""
    env = simulator.env
    rng = np.random.default_rng(13)
    a = rng.uniform(0.5, 9.5, (200, 3)) * np.array([1, 1, 0.25])
    b = rng.uniform(0.5, 9.5, (200, 3)) * np.array([1, 1, 0.25])
    obstacles = [PanelObstacle(single_prog)]
    ref = _ref_segment_loss_db(env, a, b, FREQ, panel_obstacles=obstacles)
    np.testing.assert_allclose(
        segment_loss_db(env, a, b, FREQ, obstacles), ref, atol=TOL, rtol=0
    )
    np.testing.assert_allclose(
        segment_amplitude(env, a, b, FREQ, obstacles),
        10.0 ** (-ref / 20.0),
        atol=TOL,
        rtol=0,
    )


def test_panel_stack_matches_per_panel_obstacles(small_passive, small_prog):
    obstacles = [PanelObstacle(small_passive), PanelObstacle(small_prog)]
    stack = PanelStack(obstacles)
    rng = np.random.default_rng(17)
    a = rng.uniform(0, 10, (300, 3)) * np.array([1, 1, 0.3])
    b = rng.uniform(0, 10, (300, 3)) * np.array([1, 1, 0.3])
    matrix = stack.crossing_matrix(a, b)
    for j, obstacle in enumerate(obstacles):
        np.testing.assert_array_equal(matrix[:, j], obstacle.crossing_mask(a, b))
    np.testing.assert_allclose(
        stack.losses_db(FREQ),
        [o.loss_db(FREQ) for o in obstacles],
        atol=TOL,
        rtol=0,
    )


def test_reflection_paths_match_reference():
    env = two_room_apartment()
    rng = np.random.default_rng(23)
    for _ in range(10):
        a = rng.uniform(0.5, 9.5, 3) * np.array([1, 1, 0.25])
        b = rng.uniform(0.5, 9.5, 3) * np.array([1, 1, 0.25])
        ref = _ref_reflection_paths(env, a, b, FREQ)
        got = reflection_paths(env, a, b, FREQ)
        assert len(got) == len(ref)
        got_by_wall = {id(p.wall): p for p in got}
        for wall, bounce, length, amp in ref:
            path = got_by_wall[id(wall)]
            np.testing.assert_allclose(path.bounce_point, bounce, atol=TOL)
            assert abs(path.total_length - length) < TOL
            assert abs(path.amplitude_factor - amp) < TOL


def test_batch_matches_per_segment_calls():
    """Chunked tiling is invisible: any split gives identical answers."""
    env, rng = random_environment(31, num_walls=6, num_boxes=4)
    a, b = random_segments(rng, n=64)
    compiled = compiled_geometry(env)
    whole = compiled.segment_loss_db(a, b, FREQ)
    one_by_one = np.concatenate(
        [
            compiled.segment_loss_db(a[i : i + 1], b[i : i + 1], FREQ)
            for i in range(a.shape[0])
        ]
    )
    np.testing.assert_array_equal(whole, one_by_one)


def test_compiled_geometry_recompiles_on_version_bump():
    env, rng = random_environment(37, num_walls=4, num_boxes=2)
    first = compiled_geometry(env)
    assert compiled_geometry(env) is first
    env.add_box(Box(lo=(1, 1, 0), hi=(2, 2, 1), material=DRYWALL))
    second = compiled_geometry(env)
    assert second is not first
    assert second.num_boxes == first.num_boxes + 1
