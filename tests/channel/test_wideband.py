"""Wideband sweeps: frequency selectivity from multipath."""

import numpy as np
import pytest

from repro.channel import single_antenna_node
from repro.channel.wideband import (
    WidebandResponse,
    band_report,
    subcarrier_frequencies,
    sweep_point,
)
from repro.core.errors import SimulationError
from repro.core.units import ghz
from repro.em import LinkBudget
from repro.geometry import CONCRETE, Environment, vec3
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

CENTER = ghz(28)
BW = 400e6


@pytest.fixture()
def budget():
    return LinkBudget(tx_power_dbm=20.0, bandwidth_hz=BW)


class TestSubcarriers:
    def test_grid_spans_band(self):
        freqs = subcarrier_frequencies(CENTER, BW, 9)
        assert freqs[0] == pytest.approx(CENTER - BW / 2)
        assert freqs[-1] == pytest.approx(CENTER + BW / 2)
        assert len(freqs) == 9

    def test_validation(self):
        with pytest.raises(SimulationError):
            subcarrier_frequencies(CENTER, BW, 1)
        with pytest.raises(SimulationError):
            subcarrier_frequencies(CENTER, 0.0, 4)


class TestResponse:
    def test_flat_channel_metrics(self, budget):
        freqs = subcarrier_frequencies(CENTER, BW, 8)
        response = WidebandResponse(freqs, np.full(8, 1e-8))
        assert response.flatness_db() == pytest.approx(0.0, abs=1e-9)
        # Flat channel: capacity equals the narrowband Shannon formula.
        assert response.capacity_bps(budget) == pytest.approx(
            budget.capacity_bps(1e-8), rel=1e-6
        )
        snrs = response.snrs_db(budget)
        assert np.allclose(snrs, snrs[0])

    def test_selective_channel_flatness(self, budget):
        freqs = subcarrier_frequencies(CENTER, BW, 8)
        gains = np.full(8, 1e-8)
        gains[3] = 1e-10  # a 20 dB notch
        response = WidebandResponse(freqs, gains)
        assert response.flatness_db() == pytest.approx(20.0, abs=1e-6)
        assert response.capacity_bps(budget) < budget.capacity_bps(1e-8)

    def test_coherence_bandwidth_orders(self):
        freqs = subcarrier_frequencies(CENTER, BW, 64)
        flat = WidebandResponse(freqs, np.full(64, 1e-8))
        ripple_fast = WidebandResponse(
            freqs, 1e-8 * (1 + 0.9 * np.cos(np.arange(64) * 2.0)) ** 2
        )
        assert (
            ripple_fast.coherence_bandwidth_hz()
            < flat.coherence_bandwidth_hz()
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            WidebandResponse(np.array([1.0]), np.array([1.0]))
        with pytest.raises(SimulationError):
            WidebandResponse(np.array([1.0, 2.0]), np.array([1.0]))


class TestSweep:
    def test_free_space_is_nearly_flat(self, budget):
        env = Environment(name="open")
        ap = single_antenna_node("ap", vec3(0, 0, 1))
        response = sweep_point(
            env, ap, vec3(4, 0, 1), [], {}, CENTER, BW, subcarriers=8
        )
        assert response.flatness_db() < 0.5

    def test_multipath_creates_selectivity(self, budget):
        env = Environment(name="hall")
        env.add_wall_2d((0, 3), (8, 3), CONCRETE, name="mirror")
        ap = single_antenna_node("ap", vec3(0, 0, 1))
        response = sweep_point(
            env, ap, vec3(6, 0, 1), [], {}, CENTER, BW, subcarriers=16
        )
        # Direct + wall bounce interfere differently per subcarrier.
        assert response.flatness_db() > 1.0

    def test_surface_cascade_is_frequency_selective(self, budget):
        env = Environment(name="open")
        ap = single_antenna_node("ap", vec3(0, 0, 1))
        panel = SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            12,
            12,
            vec3(3, 2, 1),
            vec3(0, -1, 0),
        )
        # Focus the surface on the evaluation point so its path rivals
        # the direct one — two comparable paths of different lengths
        # interfere differently per subcarrier.
        from repro.em import focus_configuration

        target = vec3(6, 0, 1)
        cfg = focus_configuration(
            panel.element_positions(), panel.shape, ap.centroid, target, CENTER
        )
        x = cfg.coefficients().reshape(-1)
        response = sweep_point(
            env,
            ap,
            target,
            [panel],
            {"s1": x},
            CENTER,
            BW,
            subcarriers=8,
            include_reflections=False,
        )
        assert response.flatness_db() > 1.0

    def test_band_report_keys(self, budget):
        env = Environment(name="open")
        ap = single_antenna_node("ap", vec3(0, 0, 1))
        response = sweep_point(
            env, ap, vec3(4, 0, 1), [], {}, CENTER, BW, subcarriers=8
        )
        report = band_report(response, budget)
        assert set(report) == {
            "capacity_mbps",
            "median_subcarrier_snr_db",
            "worst_subcarrier_snr_db",
            "flatness_db",
            "coherence_bandwidth_mhz",
        }
        assert report["capacity_mbps"] > 0
