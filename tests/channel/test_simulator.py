"""End-to-end channel physics in the apartment scenario."""

import numpy as np
import pytest

from repro.channel import ChannelSimulator, live_configs, single_antenna_node, ula_node
from repro.core.errors import SimulationError
from repro.core.units import ghz
from repro.em import focus_configuration, snr_db_from_channel
from repro.geometry import HUMAN, Box, vec3
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


def median_snr(model, configs, budget):
    h = model.evaluate(configs)
    return float(np.median([snr_db_from_channel(row, budget) for row in h]))


def test_partition_blocks_most_of_bedroom(simulator, ap, env, budget):
    pts = env.room("bedroom").grid(0.5)
    model = simulator.build(ap, pts, [])
    snrs = np.array(
        [snr_db_from_channel(row, budget) for row in model.evaluate({})]
    )
    # Median blocked, but the doorway leaks a LoS wedge somewhere.
    assert np.median(snrs) < 10.0
    assert snrs.max() > 20.0


def test_living_room_is_covered(simulator, ap, env, budget):
    pts = env.room("living").grid(0.8)
    model = simulator.build(ap, pts, [])
    snrs = [snr_db_from_channel(row, budget) for row in model.evaluate({})]
    assert np.median(snrs) > 20.0


def test_focused_surface_beats_flat(simulator, ap, env, single_prog, budget):
    pts = env.room("bedroom").grid(1.0)
    model = simulator.build(ap, pts, [single_prog])
    target_idx = len(pts) // 2
    h_flat = model.evaluate(live_configs([single_prog]))[target_idx]
    cfg = focus_configuration(
        single_prog.element_positions(),
        single_prog.shape,
        ap.centroid,
        pts[target_idx],
        FREQ,
    )
    single_prog.actuate(cfg)
    h_focused = model.evaluate(live_configs([single_prog]))[target_idx]
    flat = snr_db_from_channel(h_flat, budget)
    focused = snr_db_from_channel(h_focused, budget)
    assert focused > flat + 10.0


def test_focus_peak_at_target(simulator, ap, env, single_prog, budget):
    """The focused beam peaks at (or adjacent to) its target point."""
    pts = env.room("bedroom").grid(0.5)
    model = simulator.build(ap, pts, [single_prog])
    target = pts[len(pts) // 2]
    cfg = focus_configuration(
        single_prog.element_positions(),
        single_prog.shape,
        ap.centroid,
        target,
        FREQ,
    )
    x = {"s1": cfg.coefficients().reshape(-1)}
    # Surface-only contribution: subtract the direct leak through the
    # doorway, which can dominate a small panel at some grid points.
    h_surface = model.evaluate(x) - model.direct
    powers = np.sum(np.abs(h_surface) ** 2, axis=1)
    peak = pts[int(np.argmax(powers))]
    assert np.linalg.norm(peak - target) <= 0.75


def test_cache_hits_on_repeat_build(simulator, ap, bedroom_points, single_prog):
    simulator.build(ap, bedroom_points, [single_prog])
    misses0 = simulator.cache_stats[1]
    simulator.build(ap, bedroom_points, [single_prog])
    hits, misses = simulator.cache_stats
    assert hits >= 1 and misses == misses0


def test_cache_invalidated_by_environment_change(
    simulator, env, ap, bedroom_points, single_prog
):
    simulator.build(ap, bedroom_points, [single_prog])
    env.add_dynamic_box(
        "person", Box(vec3(6, 2, 0), vec3(6.5, 2.5, 1.8), HUMAN)
    )
    simulator.build(ap, bedroom_points, [single_prog])
    assert simulator.cache_stats[1] == 2


def test_cache_missed_after_panel_move(simulator, ap, bedroom_points, single_prog):
    simulator.build(ap, bedroom_points, [single_prog])
    single_prog.center = single_prog.center + np.array([0.0, 0.3, 0.0])
    simulator.build(ap, bedroom_points, [single_prog])
    hits, misses = simulator.cache_stats
    assert hits == 0 and misses == 2


def test_invalidate_resets_cache(simulator, ap, bedroom_points, single_prog):
    simulator.build(ap, bedroom_points, [single_prog])
    simulator.build(ap, bedroom_points, [single_prog])
    assert simulator.cache_stats == (1, 1)
    simulator.invalidate()
    # Local stats restart; the next identical build re-traces from scratch.
    assert simulator.cache_stats == (0, 0)
    simulator.build(ap, bedroom_points, [single_prog])
    assert simulator.cache_stats == (0, 1)
    assert simulator.telemetry.get_counter("channel.cache_invalidations") == 1
    # The monotonic telemetry counters keep the full history.
    assert simulator.telemetry.get_counter("channel.cache_misses") == 2


def test_lru_evicts_oldest_entry(env, ap, single_prog):
    sim = ChannelSimulator(env, FREQ, cache_size=2)
    pts = [np.array([[6.0 + 0.1 * i, 2.0, 1.0]]) for i in range(3)]
    for p in pts:
        sim.build(ap, p, [single_prog])
    assert sim.telemetry.get_counter("channel.cache_evictions") == 1
    assert sim.telemetry.snapshot().gauges["channel.cache_size"] == 2
    # Newest two still hit; the evicted oldest misses again.
    sim.build(ap, pts[2], [single_prog])
    sim.build(ap, pts[1], [single_prog])
    assert sim.cache_stats == (2, 3)
    sim.build(ap, pts[0], [single_prog])
    assert sim.cache_stats == (2, 4)


def test_stale_versions_purged_eagerly(env, ap, bedroom_points, single_prog):
    sim = ChannelSimulator(env, FREQ)
    sim.build(ap, bedroom_points, [single_prog])
    env.add_dynamic_box(
        "person", Box(vec3(6, 2, 0), vec3(6.5, 2.5, 1.8), HUMAN)
    )
    # The next build purges the stale-version entry before caching anew.
    sim.build(ap, bedroom_points, [single_prog])
    assert sim.telemetry.get_counter("channel.cache_stale_evictions") == 1
    assert sim.telemetry.snapshot().gauges["channel.cache_size"] == 1


def test_cache_stats_mirrored_in_telemetry(
    simulator, ap, bedroom_points, single_prog
):
    simulator.build(ap, bedroom_points, [single_prog])
    simulator.build(ap, bedroom_points, [single_prog])
    hits, misses = simulator.cache_stats
    assert simulator.telemetry.get_counter("channel.cache_hits") == hits == 1
    assert simulator.telemetry.get_counter("channel.cache_misses") == misses == 1
    # A miss traces the channel; the span wraps per-leg trace events
    # (identical for the serial and pooled paths).
    spans = simulator.telemetry.snapshot().spans
    assert spans["channel-trace"].count == 1
    legs = simulator.telemetry.events("leg-trace")
    assert legs and legs[0].attrs["kind"] == "direct"
    assert legs[0].attrs["wall_trace_s"] > 0.0


def test_human_blockage_reduces_snr(env, ap, budget, sites):
    panel = SurfacePanel(
        "s1",
        GENERIC_PROGRAMMABLE_28,
        16,
        16,
        sites.single_surface_center,
        sites.single_surface_normal,
    )
    point = np.array([[6.5, 1.0, 1.0]])
    sim = ChannelSimulator(env, FREQ)
    cfg = focus_configuration(
        panel.element_positions(), panel.shape, ap.centroid, point[0], FREQ
    )
    panel.actuate(cfg)
    before = median_snr(
        sim.build(ap, point, [panel]), live_configs([panel]), budget
    )
    # A person standing between the surface and the client.
    env.add_dynamic_box(
        "person", Box(vec3(6.3, 2.0, 0.0), vec3(6.9, 2.8, 1.9), HUMAN)
    )
    after = median_snr(
        sim.build(ap, point, [panel]), live_configs([panel]), budget
    )
    assert after < before - 10.0


def test_duplicate_panel_ids_rejected(simulator, ap, bedroom_points, single_prog):
    clone = SurfacePanel(
        "s1",
        GENERIC_PROGRAMMABLE_28,
        8,
        8,
        single_prog.center + np.array([0.5, 0, 0]),
        single_prog.normal,
    )
    with pytest.raises(SimulationError):
        simulator.build(ap, bedroom_points, [single_prog, clone])


def test_point_channel_uses_live_config(simulator, ap, single_prog):
    h = simulator.point_channel(ap, vec3(7, 2, 1), [single_prog])
    assert h.shape == (4,)
    assert np.all(np.isfinite(h))


def test_reciprocal_surface_pair_gains(simulator, ap, bedroom_points, small_passive, small_prog):
    model = simulator.build(ap, bedroom_points, [small_passive, small_prog])
    key_fwd = ("passive", "prog")
    key_rev = ("prog", "passive")
    assert key_fwd in model.surface_to_surface
    assert np.allclose(
        model.surface_to_surface[key_fwd],
        model.surface_to_surface[key_rev].T,
    )


def test_bad_frequency_rejected(env):
    with pytest.raises(SimulationError):
        ChannelSimulator(env, 0.0)
