"""Churn schedules: seeded Poisson joins/leaves with a live-count cap."""

import pytest

from repro.core.errors import ServiceError
from repro.mobility import churn_schedule


def test_same_seed_same_schedule():
    a = churn_schedule(0.5, horizon_s=60.0, seed=4)
    b = churn_schedule(0.5, horizon_s=60.0, seed=4)
    assert a == b
    assert a != churn_schedule(0.5, horizon_s=60.0, seed=5)


def test_zero_rate_is_empty():
    assert churn_schedule(0.0, horizon_s=10.0) == []


def test_every_arrival_departs_inside_horizon():
    events = churn_schedule(1.0, horizon_s=30.0, seed=1, lifetime_s=50.0)
    arrived = {e.client_id for e in events if e.kind == "arrive"}
    departed = {e.client_id for e in events if e.kind == "depart"}
    assert arrived and arrived == departed
    assert all(0.0 <= e.at <= 30.0 for e in events)


def test_live_count_never_exceeds_cap():
    events = churn_schedule(
        5.0, horizon_s=30.0, seed=2, lifetime_s=20.0, max_live=3
    )
    live = peak = 0
    for event in events:  # sorted; departures first on ties
        live += 1 if event.kind == "arrive" else -1
        peak = max(peak, live)
    assert peak == 3
    assert live == 0


def test_events_sorted_by_time():
    events = churn_schedule(2.0, horizon_s=20.0, seed=9)
    assert [e.at for e in events] == sorted(e.at for e in events)


def test_validation():
    with pytest.raises(ServiceError):
        churn_schedule(-1.0, horizon_s=10.0)
    with pytest.raises(ServiceError):
        churn_schedule(1.0, horizon_s=0.0)
    with pytest.raises(ServiceError):
        churn_schedule(1.0, horizon_s=10.0, lifetime_s=0.0)
    with pytest.raises(ServiceError):
        churn_schedule(1.0, horizon_s=10.0, max_live=0)
