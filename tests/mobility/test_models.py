"""Mobility models: waypoint walking, random walks, trace replay."""

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.mobility import (
    MobilityModel,
    RandomWalk,
    TraceReplay,
    WaypointWalker,
    read_mobility_trace,
    write_mobility_trace,
)

SQUARE = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]


def test_models_satisfy_protocol():
    walker = WaypointWalker(SQUARE)
    walk = RandomWalk((1, 1, 0), (0, 0, 0), (5, 5, 0))
    assert isinstance(walker, MobilityModel)
    assert isinstance(walk, MobilityModel)


def test_waypoint_walker_walks_the_loop():
    walker = WaypointWalker(SQUARE, speed_mps=1.0)
    assert np.allclose(walker.position(), [0, 0, 0])
    assert np.allclose(walker.step(1.0), [1, 0, 0])
    assert np.allclose(walker.step(2.0), [2, 1, 0])
    # Perimeter is 8 m at 1 m/s: a full lap returns to the start.
    walker.step(5.0)
    assert np.allclose(walker.position(), [0, 0, 0])


def test_waypoint_walker_one_way_stops_at_end():
    walker = WaypointWalker([(0, 0), (3, 0)], speed_mps=1.0, loop=False)
    walker.step(10.0)
    assert np.allclose(walker.position(), [3, 0, 0])
    # Further steps dwell at the terminus.
    assert np.allclose(walker.step(1.0), [3, 0, 0])


def test_waypoint_walker_per_segment_speeds():
    walker = WaypointWalker(
        [(0, 0), (2, 0), (2, 2)], speeds=[2.0, 1.0], loop=False
    )
    assert np.allclose(walker.step(1.0), [2, 0, 0])  # fast leg done
    assert np.allclose(walker.step(1.0), [2, 1, 0])  # slow leg half-way


def test_waypoint_walker_pauses_on_arrival():
    walker = WaypointWalker([(0, 0), (1, 0)], speed_mps=1.0, pauses=2.0)
    walker.step(1.0)  # arrive at (1, 0); pause starts
    assert np.allclose(walker.position(), [1, 0, 0])
    assert np.allclose(walker.step(1.0), [1, 0, 0])  # still dwelling
    assert np.allclose(walker.step(1.5), [0.5, 0, 0])  # pause over, moving


def test_waypoint_walker_3d_waypoints_keep_height():
    walker = WaypointWalker([(0, 0, 3.2), (2, 0, 3.2)], speed_mps=1.0)
    assert walker.step(1.0)[2] == 3.2


def test_waypoint_walker_validation():
    with pytest.raises(ValueError, match="two waypoints"):
        WaypointWalker([(0, 0)])
    with pytest.raises(ValueError, match="speed must be positive"):
        WaypointWalker(SQUARE, speed_mps=0.0)
    with pytest.raises(ValueError, match="per-segment speeds"):
        WaypointWalker(SQUARE, speeds=[1.0, 1.0])
    with pytest.raises(ValueError, match="per-waypoint pauses"):
        WaypointWalker(SQUARE, pauses=[1.0])
    with pytest.raises(ValueError, match="dt must be positive"):
        WaypointWalker(SQUARE).step(0.0)


def test_peek_is_bit_identical_to_step():
    walker = WaypointWalker(SQUARE, speed_mps=0.7, pauses=0.3)
    for _ in range(50):
        predicted = walker.peek(0.25)
        actual = walker.step(0.25)
        assert predicted.tobytes() == actual.tobytes()


def test_random_walk_peek_copies_rng_state():
    walk = RandomWalk((1, 1, 1), (0, 0, 0), (4, 4, 0), seed=7)
    for _ in range(100):
        predicted = walk.peek(0.5)
        actual = walk.step(0.5)
        assert predicted.tobytes() == actual.tobytes()


def test_random_walk_stays_in_bounds_and_is_seeded():
    a = RandomWalk((1, 1, 1), (0, 0, 0), (3, 2, 0), seed=3)
    b = RandomWalk((1, 1, 1), (0, 0, 0), (3, 2, 0), seed=3)
    for _ in range(200):
        pa, pb = a.step(0.5), b.step(0.5)
        assert pa.tobytes() == pb.tobytes()
        assert 0.0 <= pa[0] <= 3.0 and 0.0 <= pa[1] <= 2.0
        assert pa[2] == 1.0  # height never changes


def test_random_walk_validation():
    with pytest.raises(ValueError, match="speed must be positive"):
        RandomWalk((0, 0, 0), (0, 0, 0), (1, 1, 0), speed_mps=-1)
    with pytest.raises(ValueError, match="positive extent"):
        RandomWalk((0, 0, 0), (1, 1, 0), (1, 1, 0))


def test_trace_replay_round_trip(tmp_path):
    path = str(tmp_path / "walk.jsonl")
    samples = [(0.0, (0, 0, 1)), (1.0, (2, 0, 1)), (3.0, (2, 4, 1))]
    assert write_mobility_trace(path, samples) == 3
    assert [t for t, _ in read_mobility_trace(path)] == [0.0, 1.0, 3.0]
    replay = TraceReplay(path)
    assert np.allclose(replay.position(), [0, 0, 1])
    assert np.allclose(replay.step(0.5), [1, 0, 1])  # interpolated
    assert np.allclose(replay.step(1.5), [2, 2, 1])
    assert np.allclose(replay.step(10.0), [2, 4, 1])  # holds the end


def test_trace_replay_peek_matches_step(tmp_path):
    path = str(tmp_path / "walk.jsonl")
    write_mobility_trace(path, [(0.0, (0, 0, 0)), (2.0, (1, 1, 0))])
    replay = TraceReplay(path)
    assert replay.peek(0.7).tobytes() == replay.step(0.7).tobytes()


def test_trace_replay_validation(tmp_path):
    with pytest.raises(ServiceError, match="not found"):
        TraceReplay(str(tmp_path / "missing.jsonl"))
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"t": 1.0, "pos": [0, 0, 0]}\n{"t": 0.5, "pos": [1, 1, 1]}\n')
    with pytest.raises(ServiceError, match="non-decreasing"):
        TraceReplay(str(bad))
    garbled = tmp_path / "garbled.jsonl"
    garbled.write_text('{"pos": [0, 0, 0]}\n')
    with pytest.raises(ServiceError, match="bad trace line"):
        TraceReplay(str(garbled))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    with pytest.raises(ServiceError, match="empty"):
        TraceReplay(str(empty))
