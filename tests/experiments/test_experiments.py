"""Fast smoke tests for the experiment modules (small parameters).

The benchmarks run the full-size experiments; these tests check the
result plumbing — shapes, renderers, derived statistics — at a fraction
of the cost so plain ``pytest tests/`` stays quick.
"""

import numpy as np
import pytest

from repro.experiments import (
    build_scenario,
    fig2,
    fig4,
    fig5,
    fig6,
    table1,
)
from repro.orchestrator import Adam


@pytest.fixture(scope="module")
def small_scenario():
    return build_scenario(grid_spacing_m=1.0)


@pytest.fixture(scope="module")
def fast_optimizer():
    return Adam(max_iterations=40, learning_rate=0.2)


class TestScenario:
    def test_builder_shape(self, small_scenario):
        assert small_scenario.env.room("bedroom") is not None
        assert small_scenario.ap.num_antennas == 4
        grid = small_scenario.bedroom_grid()
        assert grid.shape[1] == 3
        panel = small_scenario.relay_panel(8)
        assert panel.num_elements == 64

    def test_panel_factories_sites(self, small_scenario):
        passive = small_scenario.passive_panel(8)
        prog = small_scenario.programmable_panel(8)
        assert passive.spec.is_passive
        assert prog.spec.reconfigurable
        assert not np.allclose(passive.center, prog.center)


class TestTable1:
    def test_render_contains_all_rows(self):
        result = table1.run()
        text = result.render()
        for name in ("LAIA", "Scrolls", "AutoMS"):
            assert name in text


class TestFig2:
    def test_small_run(self, small_scenario, fast_optimizer):
        result = fig2.run(
            scenario=small_scenario, optimizer=fast_optimizer, panel_size=16
        )
        assert result.median_error_m > result.reference_error_m
        text = result.render()
        assert "Coverage heatmap" in text
        assert "Localization error heatmap" in text


class TestFig4:
    def test_small_sweep(self, fast_optimizer):
        result = fig4.run(
            optimizer=fast_optimizer,
            passive_sizes=(24,),
            programmable_sizes=(12,),
            hybrid_sizes=((32, 8),),
        )
        strategies = {p.strategy for p in result.points}
        assert strategies == {"passive-only", "programmable-only", "hybrid"}
        assert "median SNR" in result.render_sweep()
        assert "cost and area" in result.render_targets()

    def test_reaching_helpers(self, fast_optimizer):
        result = fig4.run(
            optimizer=fast_optimizer,
            passive_sizes=(24,),
            programmable_sizes=(12,),
            hybrid_sizes=((32, 8),),
        )
        cheap = result.cheapest_reaching("programmable-only", -100.0)
        assert cheap is not None
        assert result.cheapest_reaching("programmable-only", 99.0) is None


class TestFig5:
    def test_small_run(self, fast_optimizer):
        result = fig5.run(optimizer=fast_optimizer, panel_size=16)
        assert set(result.error_cdfs) == {
            "Coverage Opt",
            "Localization Opt",
            "Multi-tasking",
        }
        assert set(result.snr_cdfs) == set(result.error_cdfs)
        assert "CDF over locations" in result.render()


class TestFig6:
    def test_paper_cases_only(self):
        result = fig6.run(include_extra=False)
        assert len(result.cases) == 2
        assert result.all_match

    def test_render(self):
        text = fig6.run().render()
        assert "User Input:" in text
