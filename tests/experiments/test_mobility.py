"""Mobility scenario: determinism, prefetch identity, churn, gating."""

import numpy as np
import pytest

from repro.experiments import mobility

FAST = dict(steps=8, panel_size=6, solve_iterations=6)


def _run(tmp_path=None, name="run.jsonl", **kw):
    config = mobility.MobilityConfig(**{**FAST, **kw})
    jsonl = str(tmp_path / name) if tmp_path is not None else None
    return mobility.run(config, jsonl=jsonl), jsonl


def test_same_seed_byte_identical_jsonl(tmp_path):
    _, a = _run(tmp_path, "a.jsonl")
    _, b = _run(tmp_path, "b.jsonl")
    assert open(a, "rb").read() == open(b, "rb").read()


def test_worker_count_does_not_change_sim_output(tmp_path):
    serial, a = _run(tmp_path, "w1.jsonl", channel_workers=1)
    pooled, b = _run(tmp_path, "w4.jsonl", channel_workers=4)
    assert serial.snr_digest == pooled.snr_digest
    assert open(a, "rb").read() == open(b, "rb").read()


def test_prefetch_only_warms_the_cache():
    on, _ = _run()
    off, _ = _run(prefetch=False)
    assert on.snr_digest == off.snr_digest
    diff = float(
        np.max(np.abs(np.asarray(on.snr_trace) - np.asarray(off.snr_trace)))
    )
    assert diff == 0.0
    # But the reaction path traced fewer legs inline.
    assert on.legs_retraced < off.legs_retraced
    assert on.legs_prefetched > 0 and off.legs_prefetched == 0


def test_pure_motion_never_full_purges():
    """Motion attribution regression pin: bounded dirty regions only."""
    result, _ = _run(walkers=2)
    assert result.leg_cache_full_purges == 0
    assert result.reactions > 0
    assert result.reoptimize_failures == 0


def test_gate_failures_empty_on_defaults():
    result, _ = _run()
    assert result.gate_failures() == []
    assert result.prefetch_hit_rate >= 0.5


def test_churn_arrivals_and_departures_run():
    result, _ = _run(
        steps=16, churn_rate_hz=2.0, churn_lifetime_s=1.5, churn_max_live=2
    )
    assert result.churn_arrivals > 0
    assert result.churn_departures > 0
    assert result.reoptimize_failures == 0
    # Churn runs never gate on hit rate (departures purge warmed legs).
    assert result.gate_failures() == []


def test_churn_with_tiny_leg_cache_evicts_under_pressure():
    """LRU eviction at capacity while clients churn stays correct."""
    result, _ = _run(
        steps=16,
        churn_rate_hz=2.0,
        churn_lifetime_s=1.5,
        churn_max_live=2,
        leg_cache_size=4,
    )
    assert result.reactions > 0
    assert result.reoptimize_failures == 0
    # With 4 slots and several point-dependent legs per plan, warmed
    # legs get evicted before use.
    assert result.prefetch_wasted > 0


def test_office_scene_runs():
    result, _ = _run(scene="office", walkers=1)
    assert result.reactions > 0
    assert result.gate_failures() == []


def test_unknown_scene_is_rejected():
    from repro.core.errors import SurfOSError

    with pytest.raises(SurfOSError, match="unknown scene"):
        mobility.run(mobility.MobilityConfig(scene="penthouse", **FAST))


def test_adaptive_budget_same_seed_byte_identical(tmp_path):
    _, a = _run(tmp_path, "ada.jsonl", adaptive_budget=True)
    _, b = _run(tmp_path, "adb.jsonl", adaptive_budget=True)
    assert open(a, "rb").read() == open(b, "rb").read()


def test_adaptive_budget_worker_count_identity(tmp_path):
    serial, a = _run(
        tmp_path, "adw1.jsonl", adaptive_budget=True, channel_workers=1
    )
    pooled, b = _run(
        tmp_path, "adw4.jsonl", adaptive_budget=True, channel_workers=4
    )
    assert serial.snr_digest == pooled.snr_digest
    assert open(a, "rb").read() == open(b, "rb").read()


def test_adaptive_budget_eval_backend_identity(tmp_path):
    threaded, a = _run(
        tmp_path, "adt.jsonl", adaptive_budget=True, eval_backend="thread"
    )
    processed, b = _run(
        tmp_path, "adp.jsonl", adaptive_budget=True, eval_backend="process"
    )
    assert threaded.snr_digest == processed.snr_digest
    assert open(a, "rb").read() == open(b, "rb").read()


def test_adaptive_budget_skips_iterations_and_reports_stats():
    adaptive, _ = _run(adaptive_budget=True)
    assert adaptive.reactions > 0
    assert adaptive.reoptimize_failures == 0
    assert adaptive.solver_warm_hits > 0
    assert 0 < adaptive.solver_used_iterations < (
        adaptive.solver_budgeted_iterations
    )
    summary = adaptive.summary()
    assert summary["adaptive_budget"] is True
    assert summary["solver_warm_hits"] == adaptive.solver_warm_hits
    assert "wall_solve_s" not in summary


def test_disabled_adaptive_leaves_solver_stats_zero():
    fixed, _ = _run()
    assert fixed.solver_budgeted_iterations == 0
    assert fixed.solver_warm_hits == 0


def test_client_pause_and_search_knobs_change_the_trajectory():
    # The bench workload knobs are real: dwells and a converging search
    # produce a different (still gated, still deterministic) run.
    base, _ = _run(walkers=0)
    dwell, _ = _run(
        walkers=0, client_pause_s=1.5, search_scale=0.5, search_decay=0.7
    )
    again, _ = _run(
        walkers=0, client_pause_s=1.5, search_scale=0.5, search_decay=0.7
    )
    assert dwell.snr_digest != base.snr_digest
    assert dwell.snr_digest == again.snr_digest
    assert dwell.reoptimize_failures == 0


def test_summary_shape():
    result, _ = _run()
    summary = result.summary()
    for key in (
        "reactions",
        "reaction_p50_s",
        "prefetch_hit_rate",
        "legs_retraced",
        "snr_digest",
        "leg_cache_full_purges",
    ):
        assert key in summary
    assert "snr_trace" not in summary
    assert "wall_reaction_s" not in summary
