"""The shared experiment-result contract: protocol, mixin, finish()."""

import json
from dataclasses import dataclass
from typing import Dict, List

import pytest

from repro.experiments.result import (
    ExperimentResult,
    ExperimentResultBase,
    finish,
)


@dataclass
class _FakeResult(ExperimentResultBase):
    value: int = 7
    failures: tuple = ()

    def summary(self) -> Dict[str, object]:
        return {"value": self.value, "b": 2, "a": 1}

    def render(self) -> str:
        return f"value is {self.value}"

    def gate_failures(self) -> List[str]:
        return list(self.failures)


class TestMixin:
    def test_protocol_conformance(self):
        assert isinstance(_FakeResult(), ExperimentResult)

    def test_to_json_sorted_and_deterministic(self):
        text = _FakeResult().to_json()
        assert json.loads(text) == {"value": 7, "b": 2, "a": 1}
        assert text.index('"a"') < text.index('"b"') < text.index('"value"')

    def test_gate_exit_codes(self):
        assert _FakeResult().gate() == 0
        assert _FakeResult(failures=("boom",)).gate() == 1

    def test_default_gate_is_empty(self):
        class Bare(ExperimentResultBase):
            def summary(self):
                return {}

            def render(self):
                return ""

        assert Bare().gate_failures() == []
        assert Bare().gate() == 0


class TestFinish:
    def test_pass_prints_and_writes_artifact(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        code = finish(_FakeResult(), str(path), artifact_label="numbers")
        captured = capsys.readouterr()
        assert code == 0
        assert "value is 7" in captured.out
        assert f"numbers written to {path}" in captured.out
        assert captured.err == ""
        assert json.loads(path.read_text())["value"] == 7

    def test_fail_reports_each_violation_on_stderr(self, capsys):
        result = _FakeResult(failures=("first", "second"))
        code = finish(result)
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL: first" in captured.err
        assert "FAIL: second" in captured.err

    def test_no_json_path_writes_nothing(self, tmp_path, capsys):
        finish(_FakeResult())
        assert list(tmp_path.iterdir()) == []


class TestAdopters:
    """Every CLI-gated experiment result implements the protocol."""

    def test_arrival_sweep_result(self):
        from repro.experiments.arrivals import ArrivalSweepResult, ModeResult

        fast = ModeResult(
            mode="pipelined",
            served=2,
            latencies_s=[0.1, 0.2],
            reoptimizations=1,
            span_s=1.0,
        )
        slow = ModeResult(
            mode="serial",
            served=2,
            latencies_s=[0.3, 0.4],
            reoptimizations=2,
            span_s=2.0,
        )
        result = ArrivalSweepResult(
            serial=slow,
            pipelined=fast,
            requests=2,
            rate_hz=0.0,
            seed=0,
            coalesce_ratio=2.0,
        )
        assert isinstance(result, ExperimentResult)
        assert result.gate_failures() == []
        assert result.summary()["speedup"] == pytest.approx(2.0)
        # Flip the tails: pipelined worse than serial must gate.
        bad = ArrivalSweepResult(
            serial=fast, pipelined=slow, requests=2, rate_hz=0.0, seed=0
        )
        assert "exceeds" in bad.gate_failures()[0]

    def test_fleet_result(self):
        from repro.experiments.fleet import FleetResult

        good = FleetResult(
            shards=2,
            requests=4,
            seed=0,
            strategy="zone",
            interactive_total=2,
            interactive_served=2,
        )
        assert isinstance(good, ExperimentResult)
        assert good.gate() == 0
        bad = FleetResult(
            shards=2,
            requests=4,
            seed=0,
            strategy="zone",
            interactive_total=2,
            interactive_served=1,
        )
        assert "interactive SLO missed" in bad.gate_failures()[0]

    def test_degradation_result(self):
        from repro.experiments.degradation import DegradationResult

        def make(recovered, failures):
            return DegradationResult(
                pre_fault_median_snr_db=20.0,
                degraded_median_snr_db=12.0,
                recovered_median_snr_db=recovered,
                killed=("rs-2",),
                fault_time_s=1.0,
                reaction_latency_s=0.5,
                recovery_bound_db=4.0,
                reoptimize_failures=failures,
                faults_injected=1,
                seed=0,
            )

        good = make(recovered=18.0, failures=0)
        assert isinstance(good, ExperimentResult)
        assert good.gate() == 0
        assert good.summary()["recovered_within_bound"] is True
        assert make(recovered=10.0, failures=0).gate() == 1
        assert (
            "reoptimize failures"
            in make(recovered=18.0, failures=2).gate_failures()[0]
        )

    def test_load_result(self):
        from repro.load import LoadConfig, LoadHarness, PoissonArrivals

        result = LoadHarness(LoadConfig()).run(
            PoissonArrivals(50, rate_hz=20.0, seed=0)
        )
        assert isinstance(result, ExperimentResult)
