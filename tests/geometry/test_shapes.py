"""Walls, boxes, rooms: intersection and containment semantics."""

import numpy as np
import pytest

from repro.geometry import CONCRETE, DRYWALL, WOOD, Box, Room, Wall, vec3


@pytest.fixture()
def wall():
    return Wall(start=vec3(0, 0), end=vec3(0, 4), material=CONCRETE, z_max=3.0)


class TestWall:
    def test_segment_crossing_detected(self, wall):
        hit = wall.intersect_segment(vec3(-1, 2, 1), vec3(1, 2, 1))
        assert hit is not None
        assert hit == pytest.approx([0.0, 2.0, 1.0])

    def test_segment_missing_footprint(self, wall):
        assert wall.intersect_segment(vec3(-1, 5, 1), vec3(1, 5, 1)) is None

    def test_segment_parallel(self, wall):
        assert wall.intersect_segment(vec3(1, 0, 1), vec3(1, 4, 1)) is None

    def test_segment_above_wall(self, wall):
        assert wall.intersect_segment(vec3(-1, 2, 4.0), vec3(1, 2, 4.0)) is None

    def test_segment_crossing_at_slant_height(self, wall):
        # Crosses x=0 at z interpolated between endpoints.
        hit = wall.intersect_segment(vec3(-1, 2, 0.5), vec3(1, 2, 2.5))
        assert hit is not None
        assert hit[2] == pytest.approx(1.5)

    def test_endpoint_on_wall_not_blocked(self, wall):
        # A device mounted on the wall is not blocked by it.
        assert wall.intersect_segment(vec3(0, 2, 1), vec3(1, 2, 1)) is None

    def test_mirror_point_reflects_across_plane(self, wall):
        mirrored = wall.mirror_point(vec3(2, 1, 1.5))
        assert mirrored == pytest.approx([-2.0, 1.0, 1.5])

    def test_mirror_is_involution(self, wall):
        p = vec3(1.3, 2.7, 0.8)
        assert wall.mirror_point(wall.mirror_point(p)) == pytest.approx(list(p))

    def test_length_and_height(self, wall):
        assert wall.length == pytest.approx(4.0)
        assert wall.height == pytest.approx(3.0)

    def test_contains_footprint_point(self, wall):
        assert wall.contains_footprint_point(vec3(0, 2, 1))
        assert not wall.contains_footprint_point(vec3(0, 5, 1))
        assert not wall.contains_footprint_point(vec3(1, 2, 1))

    def test_degenerate_wall_rejected(self):
        with pytest.raises(ValueError):
            Wall(start=vec3(1, 1), end=vec3(1, 1), material=CONCRETE)
        with pytest.raises(ValueError):
            Wall(start=vec3(0, 0), end=vec3(1, 0), material=CONCRETE, z_max=0.0)


class TestBox:
    def test_segment_through_box(self):
        box = Box(vec3(1, 1, 0), vec3(2, 2, 2), WOOD)
        assert box.intersects_segment(vec3(0, 1.5, 1), vec3(3, 1.5, 1))

    def test_segment_over_box(self):
        box = Box(vec3(1, 1, 0), vec3(2, 2, 1.0), WOOD)
        assert not box.intersects_segment(vec3(0, 1.5, 1.5), vec3(3, 1.5, 1.5))

    def test_segment_beside_box(self):
        box = Box(vec3(1, 1, 0), vec3(2, 2, 2), WOOD)
        assert not box.intersects_segment(vec3(0, 3, 1), vec3(3, 3, 1))

    def test_segment_ending_before_box(self):
        box = Box(vec3(5, 0, 0), vec3(6, 1, 1), WOOD)
        assert not box.intersects_segment(vec3(0, 0.5, 0.5), vec3(4, 0.5, 0.5))

    def test_diagonal_crossing(self):
        box = Box(vec3(1, 1, 0), vec3(2, 2, 2), WOOD)
        assert box.intersects_segment(vec3(0, 0, 0.1), vec3(3, 3, 1.9))

    def test_contains(self):
        box = Box(vec3(0, 0, 0), vec3(1, 1, 1), WOOD)
        assert box.contains(vec3(0.5, 0.5, 0.5))
        assert not box.contains(vec3(1.5, 0.5, 0.5))

    def test_translated(self):
        box = Box(vec3(0, 0, 0), vec3(1, 1, 1), WOOD, name="b")
        moved = box.translated(vec3(2, 0, 0))
        assert moved.lo == pytest.approx([2, 0, 0])
        assert moved.name == "b"

    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            Box(vec3(1, 1, 1), vec3(0, 2, 2), WOOD)


class TestRoom:
    def test_contains_and_margin(self):
        room = Room("r", 0, 4, 0, 3)
        assert room.contains(vec3(2, 1.5))
        assert not room.contains(vec3(5, 1.5))
        assert not room.contains(vec3(0.1, 1.5), margin=0.5)

    def test_area_and_center(self):
        room = Room("r", 0, 4, 0, 3)
        assert room.area == pytest.approx(12.0)
        assert room.center == pytest.approx([2.0, 1.5, 0.0])

    def test_grid_covers_interior(self):
        room = Room("r", 0, 4, 0, 3)
        pts = room.grid(0.5, z=1.2, margin=0.3)
        assert pts.shape[1] == 3
        assert np.all(pts[:, 2] == 1.2)
        assert np.all(pts[:, 0] >= 0.3) and np.all(pts[:, 0] <= 3.7)

    def test_grid_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            Room("r", 0, 4, 0, 3).grid(0.0)

    def test_empty_room_rejected(self):
        with pytest.raises(ValueError):
            Room("r", 1, 1, 0, 3)
