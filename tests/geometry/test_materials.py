"""Material loss curves."""

import pytest

from repro.core.units import ghz
from repro.geometry import CONCRETE, DRYWALL, MATERIALS, Material, get_material


def test_loss_increases_with_frequency():
    for mat in MATERIALS.values():
        assert mat.penetration_loss_db(ghz(60)) >= mat.penetration_loss_db(
            ghz(2.4)
        )


def test_concrete_blocks_mmwave():
    assert CONCRETE.penetration_loss_db(ghz(28)) >= 40.0


def test_drywall_mild_at_sub6():
    assert DRYWALL.penetration_loss_db(ghz(2.4)) <= 5.0


def test_interpolation_between_anchors():
    lo = CONCRETE.penetration_loss_db(ghz(5))
    hi = CONCRETE.penetration_loss_db(ghz(28))
    mid = CONCRETE.penetration_loss_db(ghz(12))
    assert lo < mid < hi


def test_clamps_outside_anchor_range():
    assert CONCRETE.penetration_loss_db(ghz(0.1)) == pytest.approx(
        CONCRETE.penetration_loss_db(ghz(2.4))
    )
    assert CONCRETE.penetration_loss_db(ghz(300)) == pytest.approx(
        CONCRETE.penetration_loss_db(ghz(60))
    )


def test_amplitude_matches_loss():
    amp = DRYWALL.penetration_amplitude(ghz(28))
    loss = DRYWALL.penetration_loss_db(ghz(28))
    assert amp == pytest.approx(10 ** (-loss / 20.0))


def test_get_material_lookup_and_error():
    assert get_material("concrete") is CONCRETE
    with pytest.raises(KeyError):
        get_material("adamantium")


def test_material_validation():
    with pytest.raises(ValueError):
        Material(name="bad", loss_anchors=())
    with pytest.raises(ValueError):
        Material(name="bad", loss_anchors=((2e9, 3.0), (1e9, 4.0)))
    with pytest.raises(ValueError):
        Material(name="bad", loss_anchors=((1e9, 3.0),), reflectivity=2.0)


def test_frequency_validation():
    with pytest.raises(ValueError):
        CONCRETE.penetration_loss_db(0.0)
