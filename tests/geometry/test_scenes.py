"""SceneBuilder registry and the shipped scenes."""

import numpy as np
import pytest

from repro.channel.simulator import _panel_digest
from repro.core.errors import SurfOSError
from repro.geometry import SCENE_NAMES, build_scene, register_scene, scene_names
from repro.geometry.floorplans import apartment_sites
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel


def test_registry_lists_shipped_scenes():
    assert set(SCENE_NAMES) >= {"two-room", "apartment", "office"}
    assert scene_names() == tuple(sorted(scene_names()))


def test_unknown_scene_rejected():
    with pytest.raises(SurfOSError, match="unknown scene"):
        build_scene("penthouse")


def test_duplicate_registration_rejected():
    with pytest.raises(SurfOSError, match="already registered"):

        @register_scene("two-room")
        def clash():  # pragma: no cover - never called
            raise AssertionError


def test_builds_are_fresh_instances():
    a = build_scene("apartment")
    b = build_scene("apartment")
    assert a.env is not b.env
    a.env.add_dynamic_box  # smoke: real environment objects


def test_two_room_matches_legacy_fleet_deployment():
    """The fleet default scene pins the historical shard geometry."""
    scene = build_scene("two-room")
    sites = apartment_sites()
    assert scene.ap_position == tuple(map(float, sites.ap_position))
    assert len(scene.panel_sites) == 1
    assert scene.panel_sites[0].panel_id == "rs"
    assert scene.panel_sites[0].center == tuple(
        map(float, sites.single_surface_center)
    )
    assert scene.observe_room == "bedroom"
    assert scene.spawn_lo == (5.2, 0.8, 1.0)
    assert scene.spawn_hi == (8.0, 3.4, 1.0)


def test_spawn_position_is_seeded_and_inside_box():
    scene = build_scene("two-room")
    a = scene.spawn_position(np.random.default_rng(7))
    b = scene.spawn_position(np.random.default_rng(7))
    assert a.tobytes() == b.tobytes()
    assert scene.spawn_lo[0] <= a[0] <= scene.spawn_hi[0]
    assert scene.spawn_lo[1] <= a[1] <= scene.spawn_hi[1]
    assert a[2] == scene.spawn_lo[2]


def test_office_rooms_sit_on_their_storeys():
    scene = build_scene("office")
    env = scene.env
    f1 = env.room("f1-lab").grid(1.0, z=1.0)
    f2 = env.room("f2-lab").grid(1.0, z=1.0)
    assert np.all(f1[:, 2] == 1.0)
    assert np.all(f2[:, 2] == 3.2 + 1.0)  # z_floor + device height
    # Same footprint, different storey.
    assert f1.shape == f2.shape
    assert np.array_equal(f1[:, :2], f2[:, :2])


def test_office_walls_and_slab_are_per_storey():
    env = build_scene("office").env
    names = {w.name for w in env.walls}
    assert {"f1-east", "f2-east", "f1-partition-south", "f2-partition-north"} <= names
    boxes = {b.name for b in env.boxes}
    assert {"slab-main", "slab-east"} <= boxes


def test_office_panels_differ_only_in_z_and_digest_uniquely():
    """Same east-wall xy on both storeys must yield distinct leg keys."""
    scene = build_scene("office")
    f1, f2 = scene.panel_sites
    assert f1.center[:2] == f2.center[:2]
    assert f1.center[2] != f2.center[2]
    panels = [
        SurfacePanel(
            site.panel_id,
            GENERIC_PROGRAMMABLE_28,
            8,
            8,
            np.asarray(site.center),
            np.asarray(site.normal),
        )
        for site in scene.panel_sites
    ]
    assert _panel_digest(panels[0]) != _panel_digest(panels[1])


def test_client_loops_cross_doorways():
    """Every shipped scene's client loops pass through a partition gap."""
    for name in ("two-room", "apartment", "office"):
        scene = build_scene(name)
        assert scene.walker_loops and scene.client_loops
        for loop in scene.client_loops:
            xs = [p[0] for p in loop]
            # The partition sits at x=5 in both floorplans; a doorway
            # crossing means the loop spans it.
            assert min(xs) < 5.0 < max(xs)
