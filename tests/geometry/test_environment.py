"""Environment queries: obstruction accounting, LoS, versioning."""

import numpy as np
import pytest

from repro.core.units import ghz
from repro.geometry import (
    CONCRETE,
    HUMAN,
    WOOD,
    Box,
    Environment,
    Room,
    describe_obstructions,
    two_room_apartment,
    vec3,
)


@pytest.fixture()
def env():
    e = Environment(name="test", ceiling_height=3.0)
    e.add_wall_2d((2, -2), (2, 2), CONCRETE, name="mid")
    return e


def test_obstruction_found(env):
    mats = env.obstructions_on_segment(vec3(0, 0, 1), vec3(4, 0, 1))
    assert [m.name for m in mats] == ["concrete"]


def test_los_when_clear(env):
    assert env.is_line_of_sight(vec3(0, 3, 1), vec3(4, 3, 1))
    assert not env.is_line_of_sight(vec3(0, 0, 1), vec3(4, 0, 1))


def test_penetration_loss_accumulates(env):
    env.add_box(Box(vec3(3, -0.5, 0), vec3(3.5, 0.5, 2), WOOD))
    loss = env.penetration_loss_db(vec3(0, 0, 1), vec3(4, 0, 1), ghz(28))
    expected = CONCRETE.penetration_loss_db(ghz(28)) + WOOD.penetration_loss_db(
        ghz(28)
    )
    assert loss == pytest.approx(expected)


def test_penetration_amplitude_in_unit_range(env):
    amp = env.penetration_amplitude(vec3(0, 0, 1), vec3(4, 0, 1), ghz(28))
    assert 0.0 < amp < 1.0


def test_version_bumps_on_mutation(env):
    v0 = env.version
    env.add_box(Box(vec3(0, 0, 0), vec3(1, 1, 1), WOOD))
    assert env.version == v0 + 1
    env.add_dynamic_box("person", Box(vec3(1, 1, 0), vec3(1.5, 1.5, 1.8), HUMAN))
    assert env.version == v0 + 2
    env.move_dynamic_box("person", (0.5, 0, 0))
    assert env.version == v0 + 3
    env.remove_dynamic_box("person")
    assert env.version == v0 + 4


def test_dynamic_box_move_and_remove(env):
    env.add_dynamic_box("person", Box(vec3(1, -0.5, 0), vec3(1.5, 0.5, 1.8), HUMAN))
    assert not env.is_line_of_sight(vec3(0, 0, 1), vec3(1.9, 0, 1))
    env.move_dynamic_box("person", (0, 5, 0))
    assert env.is_line_of_sight(vec3(0, 0, 1), vec3(1.9, 0, 1))
    with pytest.raises(KeyError):
        env.move_dynamic_box("ghost", (1, 0, 0))
    with pytest.raises(KeyError):
        env.remove_dynamic_box("ghost")


def test_room_registry(env):
    env.add_room(Room("a", 0, 2, 0, 2))
    assert env.room("a").name == "a"
    with pytest.raises(ValueError):
        env.add_room(Room("a", 0, 1, 0, 1))
    with pytest.raises(KeyError):
        env.room("b")


def test_reflective_walls_filter(env):
    assert env.reflective_walls()
    assert env.reflective_walls(min_reflectivity=0.9) == []


def test_bounds(env):
    lo, hi = env.bounds()
    assert lo[0] <= 2 <= hi[0]
    assert hi[2] >= 3.0


def test_bounds_requires_walls():
    with pytest.raises(ValueError):
        Environment().bounds()


def test_describe_obstructions(env):
    assert "concrete" in describe_obstructions(env, vec3(0, 0, 1), vec3(4, 0, 1))
    assert describe_obstructions(env, vec3(0, 3, 1), vec3(4, 3, 1)) == (
        "line of sight"
    )


class TestApartment:
    def test_rooms_defined(self):
        env = two_room_apartment()
        assert set(env.rooms) == {"living", "bedroom"}

    def test_partition_blocks_mmwave(self):
        env = two_room_apartment()
        # Straight across the partition, away from the doorway.
        loss = env.penetration_loss_db(vec3(4, 1, 1.5), vec3(6, 1, 1.5), ghz(28))
        assert loss >= 40.0

    def test_doorway_leaks(self):
        env = two_room_apartment()
        assert env.is_line_of_sight(vec3(4.5, 3.45, 1.5), vec3(5.5, 3.45, 1.5))

    def test_furniture_present_by_default(self):
        furnished = two_room_apartment()
        names = {b.name for b in furnished.boxes}
        assert {"sofa", "bed", "wardrobe", "bookshelf"} <= names

    def test_unfurnished_layout(self):
        from repro.geometry import ApartmentLayout

        env = two_room_apartment(ApartmentLayout(furnished=False))
        assert len(env.boxes) == 0

    def test_bad_doorway_rejected(self):
        from repro.geometry import ApartmentLayout

        with pytest.raises(ValueError):
            ApartmentLayout(door_lo=3.9, door_hi=3.0)


class TestDirtyRegions:
    """Mutation attribution consumed by the incremental leg cache."""

    def test_no_mutation_is_empty(self, env):
        assert env.dirty_regions(env.version) == []

    def test_box_mutations_attributed(self, env):
        v0 = env.version
        env.add_dynamic_box(
            "person", Box(vec3(1, 1, 0), vec3(1.5, 1.5, 1.8), HUMAN)
        )
        env.move_dynamic_box("person", (0.5, 0, 0))
        regions = env.dirty_regions(v0)
        assert regions is not None and len(regions) == 2
        lo, hi = regions[0]
        np.testing.assert_allclose(lo, [1, 1, 0])
        np.testing.assert_allclose(hi, [1.5, 1.5, 1.8])
        # The move covers the union of old and new footprints.
        lo, hi = regions[1]
        np.testing.assert_allclose(lo, [1, 1, 0])
        np.testing.assert_allclose(hi, [2.0, 1.5, 1.8])

    def test_remove_attributed_to_old_footprint(self, env):
        env.add_dynamic_box(
            "person", Box(vec3(1, 1, 0), vec3(1.5, 1.5, 1.8), HUMAN)
        )
        v = env.version
        env.remove_dynamic_box("person")
        regions = env.dirty_regions(v)
        assert regions is not None and len(regions) == 1
        np.testing.assert_allclose(regions[0][1], [1.5, 1.5, 1.8])

    def test_wall_region_covers_height(self, env):
        v = env.version
        env.add_wall_2d((0, 0), (0, 4), CONCRETE, name="new")
        (region,) = env.dirty_regions(v)
        assert region[0][2] == 0.0
        assert region[1][2] == pytest.approx(3.0)

    def test_unattributed_mutation_returns_none(self, env):
        v = env.version
        env.record_mutation()  # external edit with no region
        assert env.dirty_regions(v) is None
        # Later attributed mutations cannot resurrect the gap.
        env.add_box(Box(vec3(0, 0, 0), vec3(1, 1, 1), WOOD))
        assert env.dirty_regions(v) is None

    def test_future_version_returns_none(self, env):
        assert env.dirty_regions(env.version + 5) is None

    def test_rotated_out_log_returns_none(self, env):
        from repro.geometry.environment import _DIRTY_LOG_LEN

        v = env.version
        for i in range(_DIRTY_LOG_LEN + 1):
            env.add_dynamic_box(
                "walker", Box(vec3(i % 3, 0, 0), vec3(i % 3 + 0.5, 0.5, 1.8), HUMAN)
            )
        assert env.dirty_regions(v) is None
        # But a window still covered by the log is fine.
        assert env.dirty_regions(env.version - 2) is not None
