"""Datasheet parsing → spec extraction → driver generation."""

import math

import numpy as np
import pytest

from repro.core import Granularity
from repro.core.errors import TranslationError
from repro.core.units import ghz
from repro.drivers import (
    AmplitudeDriver,
    PassivePhaseDriver,
    ProgrammablePhaseDriver,
)
from repro.geometry import vec3
from repro.llm import (
    SAMPLE_DATASHEETS,
    driver_from_datasheet,
    generate_driver_source,
    load_driver_class,
    parse_datasheet,
)
from repro.surfaces import OperationMode, SignalProperty, SurfacePanel


class TestParsing:
    def test_programmable_mmwave_sheet(self):
        spec = parse_datasheet(SAMPLE_DATASHEETS["acmewave-60r"])
        assert spec.design == "AcmeWave AW-60R"
        assert spec.band_hz == (ghz(59.0), ghz(61.0))
        assert spec.supports(SignalProperty.PHASE)
        assert spec.operation_mode is OperationMode.REFLECTIVE
        assert spec.reconfigurable
        assert spec.phase_bits == 2
        assert spec.control_delay_s == pytest.approx(200e-6)
        assert spec.cost_per_element_usd == pytest.approx(2.80)

    def test_passive_sheet(self):
        spec = parse_datasheet(SAMPLE_DATASHEETS["budget-sheet-28"])
        assert spec.is_passive
        assert math.isinf(spec.control_delay_s)
        assert spec.cost_per_element_usd == pytest.approx(0.01)

    def test_amplitude_sheet(self):
        spec = parse_datasheet(SAMPLE_DATASHEETS["iris-amp-24"])
        assert spec.supports(SignalProperty.AMPLITUDE)
        assert spec.operation_mode is OperationMode.TRANSMISSIVE
        assert spec.control_delay_s == pytest.approx(5e-3)

    def test_single_frequency_becomes_band(self):
        spec = parse_datasheet(
            "Model: X\nreconfigurable phase surface at 5 GHz, latency: 1 ms"
        )
        lo, hi = spec.band_hz
        assert lo < ghz(5.0) < hi

    def test_column_wise_granularity(self):
        spec = parse_datasheet(
            "Model: ColSurf\nReflects 24 GHz signals; programmable phase, "
            "column-wise control, latency: 10 us"
        )
        assert spec.granularity is Granularity.COLUMN

    def test_missing_frequency_rejected(self):
        with pytest.raises(TranslationError):
            parse_datasheet("Model: Mystery\nprogrammable phase surface")

    def test_missing_modality_rejected(self):
        with pytest.raises(TranslationError):
            parse_datasheet("Model: Mystery\n2.4 GHz reconfigurable panel")

    def test_empty_rejected(self):
        with pytest.raises(TranslationError):
            parse_datasheet("   ")


class TestGeneration:
    def test_generated_source_is_valid_python(self):
        spec = parse_datasheet(SAMPLE_DATASHEETS["acmewave-60r"])
        source = generate_driver_source(spec)
        compile(source, "<test>", "exec")
        assert "class AcmeWaveAW60RDriver(ProgrammablePhaseDriver)" in source

    def test_generated_programmable_driver_works(self):
        spec, driver_cls = driver_from_datasheet(
            SAMPLE_DATASHEETS["acmewave-60r"]
        )
        assert issubclass(driver_cls, ProgrammablePhaseDriver)
        panel = SurfacePanel(
            "gen", spec, 4, 4, vec3(0, 0, 1.5), vec3(0, -1, 0)
        )
        driver = driver_cls(panel)
        from repro.core import SurfaceConfiguration

        ready = driver.push_configuration(
            "a", SurfaceConfiguration.zeros(4, 4), now=0.0
        ).ready_at
        assert ready == pytest.approx(200e-6)
        driver.commit(now=ready)
        assert driver.active_configuration_name == "a"
        assert driver.DESIGN == "AcmeWave AW-60R"

    def test_generated_passive_driver_works(self):
        spec, driver_cls = driver_from_datasheet(
            SAMPLE_DATASHEETS["budget-sheet-28"]
        )
        assert issubclass(driver_cls, PassivePhaseDriver)
        panel = SurfacePanel(
            "gen", spec, 4, 4, vec3(0, 0, 1.5), vec3(0, -1, 0)
        )
        driver = driver_cls(panel)
        from repro.core import SurfaceConfiguration

        driver.fabricate(SurfaceConfiguration.zeros(4, 4))
        assert driver.fabricated

    def test_generated_amplitude_driver_class(self):
        _, driver_cls = driver_from_datasheet(SAMPLE_DATASHEETS["iris-amp-24"])
        assert issubclass(driver_cls, AmplitudeDriver)

    def test_load_rejects_multiple_classes(self):
        with pytest.raises(TranslationError):
            load_driver_class(
                "class ADriver: pass\nclass BDriver: pass\n"
            )

    def test_class_name_sanitization(self):
        spec = parse_datasheet(
            "Model: 3rd-gen panel!\n5 GHz programmable phase, latency: 1 ms"
        )
        source = generate_driver_source(spec)
        assert "class Surface3rdGenPanelDriver" in source
