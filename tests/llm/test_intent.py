"""Intent translation: prompts, parsing safety, Fig. 6 fidelity."""

import pytest

from repro.broker import ServiceCall
from repro.core.errors import TranslationError
from repro.llm import (
    IntentTranslator,
    MockLLM,
    build_prompt,
    parse_calls,
)


@pytest.fixture()
def translator():
    return IntentTranslator(MockLLM())


class TestPrompt:
    def test_prompt_contains_functions_and_input(self):
        prompt = build_prompt("I want VR gaming")
        assert "enhance_link" in prompt
        assert "User Input: I want VR gaming" in prompt
        assert "Context:" in prompt

    def test_prompt_function_subset(self):
        prompt = build_prompt("x", functions=["init_powering"])
        assert "init_powering" in prompt
        assert "enhance_link" not in prompt

    def test_unknown_function_rejected(self):
        with pytest.raises(TranslationError):
            build_prompt("x", functions=["rm_rf"])


class TestFig6Fidelity:
    """The two verbatim examples from the paper's Figure 6."""

    def test_vr_gaming(self, translator):
        calls = translator.translate("I want to start VR gaming in this room.")
        rendered = [c.render() for c in calls]
        assert (
            "enhance_link('VR_headset', snr=30.0, latency=10.0)" in rendered
        )
        assert (
            "enable_sensing('room_id', type='tracking', duration=3600)"
            in rendered
        )
        assert "optimize_coverage('room_id', median_snr=25)" in rendered

    def test_meeting_while_charging(self, translator):
        calls = translator.translate(
            "I want to have an online meeting while charging my phone."
        )
        rendered = [c.render() for c in calls]
        assert "enhance_link('laptop', snr=20.0, latency=50.0)" in rendered
        assert "init_powering('phone', duration=3600)" in rendered

    def test_explicit_device_overrides_hint(self, translator):
        calls = translator.translate("online meeting on my phone")
        assert calls[0].arguments["client_id"] == "phone"

    def test_sensing_room_extraction(self, translator):
        calls = translator.translate("please track motion in the bedroom")
        assert calls[0].function == "enable_sensing"
        assert calls[0].arguments["room_id"] == "bedroom"

    def test_security_demand(self, translator):
        calls = translator.translate(
            "I need to send sensitive documents from my laptop"
        )
        assert calls[0].function == "protect_link"
        assert calls[0].arguments["client_id"] == "laptop"

    def test_empty_input_rejected(self, translator):
        with pytest.raises(TranslationError):
            translator.translate("   ")

    def test_unrelated_input_yields_no_calls(self, translator):
        assert translator.translate("what a nice day today") == []


class TestParsingSafety:
    def test_unknown_function_rejected(self):
        with pytest.raises(TranslationError):
            parse_calls("delete_all_files('now')")

    def test_non_literal_arguments_rejected(self):
        with pytest.raises(TranslationError):
            parse_calls("enhance_link(__import__('os').getcwd())")

    def test_kwargs_splat_rejected(self):
        with pytest.raises(TranslationError):
            parse_calls("enhance_link('phone', **{'snr': 1})")

    def test_too_many_positional_rejected(self):
        with pytest.raises(TranslationError):
            parse_calls("enhance_link('phone', 30.0, 10.0)")

    def test_prose_lines_skipped(self):
        calls = parse_calls(
            "Here is what I will do:\n"
            "# boost the link\n"
            "enhance_link('phone', snr=25.0)\n"
            "Hope this helps!\n"
        )
        assert len(calls) == 1
        assert calls[0].arguments == {"client_id": "phone", "snr": 25.0}

    def test_signature_validation_via_servicecall(self):
        with pytest.raises(TranslationError):
            parse_calls("enhance_link('phone', bogus_arg=1)")
        with pytest.raises(TranslationError):
            parse_calls("enhance_link(snr=25.0)")  # missing client_id


class TestServiceCall:
    def test_render_positional_then_kwargs(self):
        call = ServiceCall(
            "enhance_link", {"client_id": "phone", "snr": 25.0}
        )
        assert call.render() == "enhance_link('phone', snr=25.0)"

    def test_type_checks(self):
        with pytest.raises(TranslationError):
            ServiceCall("enhance_link", {"client_id": 42})
        with pytest.raises(TranslationError):
            ServiceCall("optimize_coverage", {"room_id": "x", "median_snr": "high"})
        # ints accepted where floats expected
        ServiceCall("optimize_coverage", {"room_id": "x", "median_snr": 25})

    def test_unknown_function(self):
        with pytest.raises(TranslationError):
            ServiceCall("launch_rockets", {})
