"""Design-request parsing and recommendation."""

import math

import pytest

from repro.core.errors import TranslationError
from repro.core.units import ghz
from repro.llm import parse_design_request, recommend_designs
from repro.surfaces import SignalProperty


class TestParsing:
    def test_frequency_required(self):
        with pytest.raises(TranslationError):
            parse_design_request("a cheap surface please")
        with pytest.raises(TranslationError):
            parse_design_request("   ")

    def test_frequency_units(self):
        q = parse_design_request("surface for 2.4 GHz")
        assert q.frequency_hz == pytest.approx(ghz(2.4))
        q = parse_design_request("surface for 900 MHz")
        assert q.frequency_hz == pytest.approx(900e6)

    def test_reconfigurability_keywords(self):
        assert parse_design_request(
            "passive printed sheet for 60 GHz"
        ).reconfigurable is False
        assert parse_design_request(
            "steerable surface for 24 GHz"
        ).reconfigurable is True
        assert parse_design_request("surface for 5 GHz").reconfigurable is None

    def test_cost_bound(self):
        q = parse_design_request(
            "a 24 GHz surface under $3 per element"
        )
        assert q.max_cost_per_element_usd == pytest.approx(3.0)
        q = parse_design_request("a 24 GHz surface")
        assert math.isinf(q.max_cost_per_element_usd)

    def test_property_keywords(self):
        q = parse_design_request("amplitude on/off surface for 2.4 GHz")
        assert SignalProperty.AMPLITUDE in q.properties
        q = parse_design_request("polarization control at 2.4 GHz")
        assert q.properties == (SignalProperty.POLARIZATION,)
        # Default: phase.
        q = parse_design_request("a surface for 5 GHz")
        assert q.properties == (SignalProperty.PHASE,)


class TestRecommendation:
    def test_passive_mmwave(self):
        designs = recommend_designs("passive surface for 60 GHz")
        assert [s.design for s in designs] == ["AutoMS", "MilliMirror"]

    def test_cost_bounded(self):
        designs = recommend_designs(
            "steerable phase surface at 24 GHz under $3 per element"
        )
        assert all(s.cost_per_element_usd <= 3.0 for s in designs)
        assert all(s.reconfigurable for s in designs)

    def test_uncovered_band_adapts(self):
        designs = recommend_designs("programmable surface for 10 GHz")
        assert len(designs) == 1
        assert "@10GHz" in designs[0].design
        assert designs[0].in_band(ghz(10))

    def test_limit(self):
        designs = recommend_designs("surface for 2.4 GHz", limit=2)
        assert len(designs) <= 2
