"""Units for the drift-aware solve-budget machinery."""

import numpy as np
import pytest

from repro.channel import LinearChannelForm
from repro.core.errors import ServiceError
from repro.orchestrator import (
    BudgetController,
    SolutionStore,
    SolveBudgetConfig,
    objective_digest,
)
from repro.orchestrator.objectives import CoverageObjective, JointObjective
from repro.orchestrator.solvebudget import group_key, relative_drift


def coverage(points=3, elements=6, seed=0):
    rng = np.random.default_rng(seed)
    coeffs = 1e-4 * np.exp(1j * rng.uniform(0, 2 * np.pi, (points, 1, elements)))
    form = LinearChannelForm("s", coeffs, np.zeros((points, 1), dtype=complex))
    return CoverageObjective(form)


class TestConfigValidation:
    def test_defaults_disabled(self):
        config = SolveBudgetConfig()
        assert not config.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"floor": 0},
            {"floor": 8, "ceiling": 4},
            {"drift_low": 0.5, "drift_high": 0.5},
            {"drift_low": -0.1},
            {"store_size": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            SolveBudgetConfig(**kwargs)


class TestBudgetController:
    def controller(self, **kwargs):
        return BudgetController(SolveBudgetConfig(enabled=True, **kwargs))

    def test_cold_start_gets_full_budget(self):
        assert self.controller(floor=4).budget(None, 60) == 60

    def test_low_drift_gets_floor(self):
        ctl = self.controller(floor=4, drift_low=0.02)
        assert ctl.budget(0.0, 60) == 4
        assert ctl.budget(0.02, 60) == 4

    def test_high_drift_gets_ceiling(self):
        ctl = self.controller(floor=4, drift_high=0.5)
        assert ctl.budget(0.5, 60) == 60
        assert ctl.budget(7.0, 60) == 60

    def test_midband_interpolates_linearly(self):
        ctl = self.controller(floor=10, drift_low=0.0, drift_high=1.0)
        assert ctl.budget(0.5, 110) == 60  # exactly halfway
        assert 10 < ctl.budget(0.25, 110) < 60

    def test_ceiling_clamps_to_full_budget(self):
        ctl = self.controller(floor=4, ceiling=100)
        assert ctl.budget(None, 30) == 30

    def test_explicit_ceiling_caps_below_full(self):
        ctl = self.controller(floor=4, ceiling=20)
        assert ctl.budget(None, 60) == 20
        assert ctl.budget(9.0, 60) == 20

    def test_floor_wins_over_tiny_full_budget(self):
        # A full budget below the floor still grants the floor: the
        # controller never hands out less than the polish minimum.
        ctl = self.controller(floor=8)
        assert ctl.budget(None, 2) == 8

    def test_pure_function_of_inputs(self):
        ctl = self.controller(floor=4)
        assert all(
            ctl.budget(0.1, 60) == ctl.budget(0.1, 60) for _ in range(5)
        )


class TestRelativeDrift:
    def test_zero_for_identical_scores(self):
        assert relative_drift(-3.2, -3.2) == 0.0

    def test_scales_by_cached_magnitude(self):
        assert relative_drift(-1.1, -1.0) == pytest.approx(0.1)
        assert relative_drift(-110.0, -100.0) == pytest.approx(0.1)

    def test_near_zero_cached_score_stays_finite(self):
        assert np.isfinite(relative_drift(1.0, 0.0))


class TestSolutionStore:
    def test_roundtrip_hit(self):
        store = SolutionStore(4)
        digest = objective_digest(coverage())
        store.store("t1", "s1", digest, np.arange(4.0), -2.5)
        entry = store.lookup("t1", "s1", digest)
        assert entry is not None
        assert entry.loss == -2.5
        np.testing.assert_array_equal(entry.phases, np.arange(4.0))
        assert store.hits == 1 and store.misses == 0

    def test_digest_mismatch_is_miss(self):
        store = SolutionStore(4)
        store.store("t1", "s1", objective_digest(coverage(points=3)),
                    np.zeros(4), 0.0)
        assert store.lookup(
            "t1", "s1", objective_digest(coverage(points=5))
        ) is None
        assert store.misses == 1

    def test_stored_phases_are_copies(self):
        store = SolutionStore(4)
        phases = np.arange(3.0)
        store.store("t1", "s1", ("d",), phases, 0.0)
        phases[0] = 99.0
        assert store.lookup("t1", "s1", ("d",)).phases[0] == 0.0

    def test_lru_eviction_drops_oldest(self):
        store = SolutionStore(2)
        store.store("t1", "s1", ("d",), np.zeros(2), 0.0)
        store.store("t2", "s1", ("d",), np.zeros(2), 0.0)
        store.lookup("t1", "s1", ("d",))  # refresh t1
        store.store("t3", "s1", ("d",), np.zeros(2), 0.0)  # evicts t2
        assert store.lookup("t1", "s1", ("d",)) is not None
        assert store.lookup("t2", "s1", ("d",)) is None
        assert len(store) == 2

    def test_forget_task_drops_singleton_and_group_keys(self):
        store = SolutionStore(8)
        store.store("t1", "s1", ("d",), np.zeros(2), 0.0)
        store.store(group_key(["t1", "t2"]), "s1", ("d",), np.zeros(2), 0.0)
        store.store("t2", "s2", ("d",), np.zeros(2), 0.0)
        assert store.forget_task("t1") == 2
        assert len(store) == 1
        assert store.lookup("t2", "s2", ("d",)) is not None


class TestKeysAndDigests:
    def test_group_key_sorts_members(self):
        assert group_key(["b", "a"]) == group_key(["a", "b"])
        assert group_key(["a"]) != "a"  # prefixed, never collides

    def test_digest_stable_across_coefficient_changes(self):
        # Same shape, different channel coefficients: the digest must
        # match — coefficient drift is the probe's job, not the key's.
        assert objective_digest(coverage(seed=0)) == objective_digest(
            coverage(seed=9)
        )

    def test_digest_changes_with_shape(self):
        assert objective_digest(coverage(points=3)) != objective_digest(
            coverage(points=4)
        )
        assert objective_digest(coverage(elements=6)) != objective_digest(
            coverage(elements=8)
        )

    def test_joint_digest_covers_parts_and_weights(self):
        a = JointObjective([(coverage(), 0.7), (coverage(points=5), 0.3)])
        b = JointObjective([(coverage(), 0.7), (coverage(points=5), 0.3)])
        c = JointObjective([(coverage(), 0.5), (coverage(points=5), 0.5)])
        assert objective_digest(a) == objective_digest(b)
        assert objective_digest(a) != objective_digest(c)
