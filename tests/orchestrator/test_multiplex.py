"""Multiplexing strategies: TDM / FDM / SDM / configuration (joint)."""

import numpy as np
import pytest

from repro.core.errors import SchedulingError
from repro.core.units import ghz
from repro.geometry import vec3
from repro.orchestrator import MultiplexStrategy, propose_slices
from repro.orchestrator.multiplex import (
    frequency_division_slices,
    joint_slices,
    space_division_slices,
    time_division_slices,
)
from repro.orchestrator.tasks import ServiceTask, ServiceType
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel


@pytest.fixture()
def panels():
    return [
        SurfacePanel(
            f"s{i}",
            GENERIC_PROGRAMMABLE_28,
            4,
            4,
            vec3(i * 2.0, 0, 1.5),
            vec3(0, -1, 0),
        )
        for i in range(2)
    ]


@pytest.fixture()
def task():
    return ServiceTask(ServiceType.COVERAGE, {})


class TestTimeDivision:
    def test_full_surface_fractional_time(self, task, panels):
        slices = time_division_slices(task, panels, time_fraction=0.25)
        assert len(slices) == 2
        for s in slices:
            assert s.num_elements == 16
            assert s.time_fraction == 0.25
            assert not s.shared_group

    def test_two_quarter_tasks_fit(self, task, panels):
        a = time_division_slices(task, panels, 0.5)[0]
        b = time_division_slices(task, panels, 0.5)[0]
        assert not a.conflicts_with(b)

    def test_needs_panels(self, task):
        with pytest.raises(SchedulingError):
            time_division_slices(task, [], 0.5)


class TestFrequencyDivision:
    def test_sub_band_slices(self, task, panels):
        band = (ghz(27.2), ghz(27.8))
        slices = frequency_division_slices(task, panels, band)
        assert all(s.band_hz == band for s in slices)

    def test_disjoint_bands_coexist(self, task, panels):
        a = frequency_division_slices(task, panels, (ghz(27.1), ghz(27.9)))[0]
        b = frequency_division_slices(task, panels, (ghz(28.0), ghz(28.9)))[0]
        assert not a.conflicts_with(b)

    def test_band_outside_hardware_rejected(self, task, panels):
        with pytest.raises(SchedulingError):
            frequency_division_slices(task, panels, (ghz(2.0), ghz(3.0)))


class TestSpaceDivision:
    def test_nearest_elements_selected(self, task, panels):
        target = panels[0].element_positions()[0]
        slices = space_division_slices(
            task, panels, target[None, :], fraction=0.25
        )
        mask = slices[0].element_mask
        assert mask.sum() == 4
        # The selected elements are the closest ones to the target.
        dists = np.linalg.norm(
            panels[0].element_positions() - target[None, :], axis=1
        )
        assert set(np.flatnonzero(mask)) == set(np.argsort(dists)[:4])

    def test_disjoint_halves_coexist(self, task, panels):
        elems = panels[0].element_positions()
        a = space_division_slices(task, panels[:1], elems[0][None, :], 0.25)[0]
        b = space_division_slices(task, panels[:1], elems[-1][None, :], 0.25)[0]
        assert not a.space_overlaps(b)

    def test_fraction_validation(self, task, panels):
        with pytest.raises(SchedulingError):
            space_division_slices(task, panels, np.zeros((1, 3)), fraction=0.0)


class TestJoint:
    def test_shared_group_set(self, task, panels):
        slices = joint_slices(task, panels, group="main")
        assert all(s.shared_group == "main" for s in slices)
        assert not slices[0].conflicts_with(slices[1])

    def test_group_required(self, task, panels):
        with pytest.raises(SchedulingError):
            joint_slices(task, panels, group="")


class TestDispatch:
    def test_propose_routes_each_strategy(self, task, panels):
        assert propose_slices(
            task, panels, MultiplexStrategy.TIME, time_fraction=0.5
        )
        assert propose_slices(
            task,
            panels,
            MultiplexStrategy.FREQUENCY,
            band_hz=(ghz(27.2), ghz(27.8)),
        )
        assert propose_slices(
            task,
            panels,
            MultiplexStrategy.SPACE,
            target_points=np.zeros((1, 3)),
        )
        assert propose_slices(task, panels, MultiplexStrategy.JOINT)

    def test_missing_arguments_rejected(self, task, panels):
        with pytest.raises(SchedulingError):
            propose_slices(task, panels, MultiplexStrategy.FREQUENCY)
        with pytest.raises(SchedulingError):
            propose_slices(task, panels, MultiplexStrategy.SPACE)

    def test_joint_defaults_group_to_service(self, task, panels):
        slices = propose_slices(task, panels, MultiplexStrategy.JOINT)
        assert slices[0].shared_group == "coverage"
