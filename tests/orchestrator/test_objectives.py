"""Analytic gradients vs finite differences — the load-bearing check."""

import numpy as np
import pytest

from repro.channel import LinearChannelForm
from repro.core.errors import OptimizationError
from repro.em import LinkBudget
from repro.orchestrator.objectives import (
    CoverageGoal,
    CoverageObjective,
    FiniteDifferenceObjective,
    JointObjective,
    LocalizationObjective,
    PoweringObjective,
)


def random_form(rng, k=4, m=2, e=6, scale=1e-4):
    coeffs = scale * (rng.normal(size=(k, m, e)) + 1j * rng.normal(size=(k, m, e)))
    offset = scale * (rng.normal(size=(k, m)) + 1j * rng.normal(size=(k, m)))
    return LinearChannelForm("s", coeffs, offset)


def check_gradient(objective, phases, rtol=1e-4, atol=1e-9):
    analytic_loss, analytic_grad = objective.value_and_gradient(phases)
    fd = FiniteDifferenceObjective(objective.value, objective.dim, step=1e-6)
    fd_loss, fd_grad = fd.value_and_gradient(phases)
    assert analytic_loss == pytest.approx(fd_loss)
    scale = max(np.abs(fd_grad).max(), atol)
    assert np.allclose(analytic_grad, fd_grad, rtol=rtol, atol=rtol * scale), (
        f"analytic {analytic_grad} vs fd {fd_grad}"
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestCoverage:
    def test_gradient_matches_finite_differences(self, rng):
        form = random_form(rng)
        obj = CoverageObjective(form)
        phases = rng.uniform(0, 2 * np.pi, obj.dim)
        check_gradient(obj, phases)

    def test_gradient_with_amplitudes_and_weights(self, rng):
        form = random_form(rng)
        amplitudes = rng.uniform(0.3, 1.0, 6)
        weights = rng.uniform(0.1, 1.0, 4)
        obj = CoverageObjective(
            form,
            amplitudes=amplitudes,
            goal=CoverageGoal(budget=LinkBudget(), weights=weights),
        )
        check_gradient(obj, rng.uniform(0, 2 * np.pi, obj.dim))

    def test_loss_decreases_with_aligned_phases(self, rng):
        # Single point, no offset: aligning all coefficients is optimal.
        coeffs = 1e-4 * np.exp(
            1j * rng.uniform(0, 2 * np.pi, (1, 1, 5))
        )
        form = LinearChannelForm("s", coeffs, np.zeros((1, 1), dtype=complex))
        obj = CoverageObjective(form)
        aligned = -np.angle(coeffs[0, 0])
        random_phases = rng.uniform(0, 2 * np.pi, 5)
        assert obj.value(aligned) < obj.value(random_phases)

    def test_snr_helper_consistent(self, rng):
        form = random_form(rng)
        obj = CoverageObjective(form)
        phases = rng.uniform(0, 2 * np.pi, obj.dim)
        snrs = obj.snr_db(phases)
        assert snrs.shape == (4,)
        assert np.all(np.isfinite(snrs))

    def test_validation(self, rng):
        form = random_form(rng)
        with pytest.raises(OptimizationError):
            CoverageObjective(form, amplitudes=np.ones(3))
        with pytest.raises(OptimizationError):
            CoverageObjective(
                form, goal=CoverageGoal(budget=LinkBudget(), weights=np.ones(2))
            )
        with pytest.raises(OptimizationError):
            CoverageObjective(
                form,
                goal=CoverageGoal(budget=LinkBudget(), weights=np.zeros(4)),
            )
        obj = CoverageObjective(form)
        with pytest.raises(OptimizationError):
            obj.value(np.zeros(3))


class TestPowering:
    def test_gradient_matches_finite_differences(self, rng):
        form = random_form(rng)
        obj = PoweringObjective(form)
        check_gradient(obj, rng.uniform(0, 2 * np.pi, obj.dim))

    def test_harvested_dbm_shape(self, rng):
        form = random_form(rng)
        obj = PoweringObjective(form)
        assert obj.harvested_dbm(np.zeros(obj.dim)).shape == (4,)


class TestLocalization:
    def make_objective(self, rng, k=3, m=2, e=5, i=7, beta=8.0):
        form = random_form(rng, k=k, m=m, e=e)
        predictions = 1e-4 * (
            rng.normal(size=(i, m, e)) + 1j * rng.normal(size=(i, m, e))
        )
        true_idx = rng.integers(0, i, size=k)
        return LocalizationObjective(
            form, predictions, true_idx, beta=beta
        )

    def test_gradient_matches_finite_differences(self, rng):
        obj = self.make_objective(rng)
        check_gradient(obj, rng.uniform(0, 2 * np.pi, obj.dim), rtol=5e-4)

    def test_gradient_matches_fd_high_beta(self, rng):
        obj = self.make_objective(rng, beta=40.0)
        check_gradient(obj, rng.uniform(0, 2 * np.pi, obj.dim), rtol=5e-4)

    def test_spectrum_bounded(self, rng):
        obj = self.make_objective(rng)
        spec = obj.spectrum(rng.uniform(0, 2 * np.pi, obj.dim))
        assert spec.shape == (3, 7)
        assert np.all(spec >= 0.0) and np.all(spec <= 1.0 + 1e-9)

    def test_perfect_prediction_peaks_at_truth(self, rng):
        """When predictions include the exact measured channel map,
        the spectrum peaks at the true index."""
        k, m, e = 1, 3, 6
        form = random_form(rng, k=k, m=m, e=e)
        # Build predictions where index 2 IS the measured map (offset-free).
        predictions = 1e-4 * (
            rng.normal(size=(5, m, e)) + 1j * rng.normal(size=(5, m, e))
        )
        predictions[2] = form.coeffs[0]
        offset_free = LinearChannelForm(
            "s", form.coeffs, np.zeros((k, m), dtype=complex)
        )
        obj = LocalizationObjective(offset_free, predictions, [2])
        phases = rng.uniform(0, 2 * np.pi, e)
        assert obj.estimated_angle_indices(phases)[0] == 2

    def test_validation(self, rng):
        form = random_form(rng)
        preds = np.zeros((5, 2, 6), dtype=complex)
        with pytest.raises(OptimizationError):
            LocalizationObjective(form, preds[:, :1, :], [0] * 4)
        with pytest.raises(OptimizationError):
            LocalizationObjective(form, preds, [0] * 3)
        with pytest.raises(OptimizationError):
            LocalizationObjective(form, preds, [9] * 4)
        with pytest.raises(OptimizationError):
            LocalizationObjective(form, preds, [0] * 4, beta=0.0)


class TestJoint:
    def test_weighted_sum_value_and_gradient(self, rng):
        form = random_form(rng)
        cov = CoverageObjective(form)
        pow_ = PoweringObjective(form)
        joint = JointObjective([(cov, 1.0), (pow_, 0.25)])
        phases = rng.uniform(0, 2 * np.pi, joint.dim)
        v, g = joint.value_and_gradient(phases)
        cv, cg = cov.value_and_gradient(phases)
        pv, pg = pow_.value_and_gradient(phases)
        assert v == pytest.approx(cv + 0.25 * pv)
        assert np.allclose(g, cg + 0.25 * pg)

    def test_joint_gradient_matches_fd(self, rng):
        form = random_form(rng)
        joint = JointObjective(
            [(CoverageObjective(form), 1.0), (PoweringObjective(form), 0.1)]
        )
        check_gradient(joint, rng.uniform(0, 2 * np.pi, joint.dim))

    def test_validation(self, rng):
        with pytest.raises(OptimizationError):
            JointObjective([])
        f1 = random_form(rng, e=4)
        f2 = random_form(rng, e=6)
        with pytest.raises(OptimizationError):
            JointObjective(
                [(CoverageObjective(f1), 1.0), (CoverageObjective(f2), 1.0)]
            )
