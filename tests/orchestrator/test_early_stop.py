"""Adaptive budgets and convergence early-stop on the optimizers.

The determinism contract under test: budgets only ever *shorten* a run,
early stop is a pure function of the loss stream, and the lockstep
multi-task drivers stay bit-identical to the serial per-task loop even
when budgets and early stops retire tasks at different iterations.
"""

import numpy as np
import pytest

from repro.core.errors import OptimizationError
from repro.orchestrator import (
    Adam,
    GradientDescent,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.orchestrator.objectives import Objective


class Quadratic(Objective):
    """Convex test loss: ||phi - target||^2."""

    def __init__(self, target):
        self.target = np.asarray(target, dtype=float)
        self.dim = self.target.size

    def value_and_gradient(self, phases):
        phases = np.asarray(phases, dtype=float).reshape(-1)
        diff = phases - self.target
        return float(diff @ diff), 2.0 * diff


class Constant(Objective):
    """A flat loss surface — nothing ever improves."""

    def __init__(self, dim=4, level=3.0):
        self.dim = dim
        self.level = float(level)

    def value_and_gradient(self, phases):
        return self.level, np.zeros(self.dim)


def result_fingerprint(result):
    """Everything the determinism contract promises, comparable."""
    return (
        result.phases.tobytes(),
        result.loss,
        tuple(result.history),
        result.iterations,
        result.evaluations,
        result.budget,
        result.early_stopped,
    )


class TestBudgetCaps:
    @pytest.mark.parametrize(
        "optimizer, budget",
        [
            (GradientDescent(learning_rate=0.1, max_iterations=100), 7),
            (Adam(max_iterations=100), 7),
            (RandomSearch(max_iterations=100, population=4, seed=0), 7),
            (SimulatedAnnealing(steps=100, speculation=4, seed=0), 7),
        ],
    )
    def test_budget_caps_iterations(self, optimizer, budget):
        result = optimizer.optimize(
            Quadratic(np.ones(5)), np.zeros(5), budget=budget
        )
        assert result.iterations <= budget
        assert result.budget == budget

    def test_budget_never_raises_the_limit(self):
        optimizer = RandomSearch(max_iterations=5, population=4, seed=0)
        result = optimizer.optimize(
            Quadratic(np.ones(4)), np.zeros(4), budget=500
        )
        assert result.budget == 5

    def test_none_budget_is_the_full_run(self):
        optimizer = RandomSearch(max_iterations=9, population=4, seed=0)
        capped = optimizer.optimize(Quadratic(np.ones(4)), np.zeros(4))
        assert capped.budget == 9
        assert capped.iterations == 9

    def test_budget_list_length_must_match(self):
        optimizer = RandomSearch(max_iterations=5, seed=0)
        with pytest.raises(OptimizationError):
            optimizer.optimize_many(
                [Quadratic(np.ones(3))], [np.zeros(3)], budgets=[1, 2]
            )

    def test_budgeted_prefix_matches_full_run(self):
        # A budget is a pure truncation: the capped run replays the
        # full run's RNG stream and loss trajectory, just shorter.
        optimizer = RandomSearch(max_iterations=20, population=5, seed=4)
        objective = Quadratic(np.ones(6))
        full = optimizer.optimize(objective, np.zeros(6))
        capped = optimizer.optimize(objective, np.zeros(6), budget=8)
        assert capped.history == full.history[: len(capped.history)]


class TestEarlyStop:
    def test_flat_loss_stops_at_patience(self):
        optimizer = RandomSearch(
            max_iterations=50, population=4, seed=0,
            early_stop_eps=1e-3, early_stop_patience=3,
        )
        result = optimizer.optimize(Constant(), np.zeros(4))
        assert result.early_stopped
        assert result.iterations == 3

    def test_eps_none_never_stops(self):
        optimizer = RandomSearch(
            max_iterations=12, population=4, seed=0, early_stop_eps=None
        )
        result = optimizer.optimize(Constant(), np.zeros(4))
        assert not result.early_stopped
        assert result.iterations == 12

    def test_stop_is_relative_to_loss_scale(self):
        # The same trajectory shifted by 1000x must stop identically:
        # eps is relative, not absolute.
        kwargs = dict(
            max_iterations=40, population=6, seed=1,
            early_stop_eps=1e-2, early_stop_patience=2,
        )
        small = RandomSearch(**kwargs).optimize(
            Quadratic(np.full(4, 0.01)), np.zeros(4)
        )
        large = RandomSearch(**kwargs).optimize(
            Quadratic(np.full(4, 0.01)), np.zeros(4), budget=None
        )
        assert small.iterations == large.iterations

    def test_annealing_stops_in_whole_blocks(self):
        # SA draws a whole speculative block before evaluating, so the
        # stop lands on a block boundary.  Starting at the optimum with
        # a frozen temperature rejects every proposal: blocks run to
        # completion and the stop fires after exactly `patience` blocks.
        optimizer = SimulatedAnnealing(
            steps=64, speculation=8, seed=0,
            early_stop_eps=1e-3, early_stop_patience=2,
            initial_temperature=1e-12, cooling=1.0,
        )
        result = optimizer.optimize(Quadratic(np.zeros(6)), np.zeros(6))
        assert result.early_stopped
        assert result.iterations == 2 * 8

    def test_deterministic_across_repeats(self):
        optimizer = RandomSearch(
            max_iterations=30, population=5, seed=7,
            early_stop_eps=1e-2, early_stop_patience=2,
        )
        a = optimizer.optimize(Quadratic(np.ones(5)), np.zeros(5))
        b = optimizer.optimize(Quadratic(np.ones(5)), np.zeros(5))
        assert result_fingerprint(a) == result_fingerprint(b)


class TestLockstepMasks:
    """Stopped tasks drop out of the stacked batch; survivors must
    replay their serial RNG streams bit for bit."""

    def targets(self):
        rng = np.random.default_rng(11)
        return [rng.normal(size=6) for _ in range(3)]

    def check_lockstep_matches_serial(self, make_optimizer, budgets):
        objectives = [Quadratic(t) for t in self.targets()]
        initials = [np.zeros(6) for _ in objectives]
        lockstep = make_optimizer(lockstep=True).optimize_many(
            objectives, initials, budgets=budgets
        )
        serial = make_optimizer(lockstep=False).optimize_many(
            objectives, initials, budgets=budgets
        )
        for got, want in zip(lockstep, serial):
            assert result_fingerprint(got) == result_fingerprint(want)
        return lockstep

    def test_random_search_mixed_budgets_and_early_stop(self):
        def make(lockstep):
            return RandomSearch(
                max_iterations=30, population=5, seed=3, lockstep=lockstep,
                early_stop_eps=1e-2, early_stop_patience=2,
            )

        results = self.check_lockstep_matches_serial(make, [5, None, 12])
        assert results[0].budget == 5
        assert results[1].budget == 30
        # Tasks retire at different iterations — the mask was exercised.
        assert len({r.iterations for r in results}) > 1

    def test_annealing_mixed_budgets_and_early_stop(self):
        def make(lockstep):
            return SimulatedAnnealing(
                steps=60, speculation=5, seed=2, lockstep=lockstep,
                early_stop_eps=1e-2, early_stop_patience=1,
            )

        results = self.check_lockstep_matches_serial(make, [17, None, 30])
        assert results[0].iterations <= 17

    def test_random_search_no_budgets_still_bitwise(self):
        # budgets=None + eps=None is the legacy fixed loop: lockstep
        # and serial must agree exactly (the feature-off guarantee).
        def make(lockstep):
            return RandomSearch(
                max_iterations=15, population=4, seed=9, lockstep=lockstep
            )

        results = self.check_lockstep_matches_serial(make, None)
        assert all(not r.early_stopped for r in results)
        assert all(r.budget == 15 for r in results)

    def test_annealing_no_budgets_still_bitwise(self):
        def make(lockstep):
            return SimulatedAnnealing(
                steps=40, speculation=6, seed=5, lockstep=lockstep
            )

        self.check_lockstep_matches_serial(make, None)
