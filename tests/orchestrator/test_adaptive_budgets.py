"""Adaptive solve budgets through the orchestrator: warm starts,
solver accounting, and the feature-off byte-identity contract."""

import numpy as np
import pytest

from repro import SurfOS, ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import RandomSearch, SolveBudgetConfig
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


class SpyRandomSearch(RandomSearch):
    """Records every (initial phases, budget) pair it is handed."""

    def optimize(self, objective, initial_phases, projection=None, budget=None):
        self.calls.append(
            (np.asarray(initial_phases, dtype=float).copy(), budget)
        )
        return super().optimize(objective, initial_phases, projection, budget)


def build_system(solve_budget=None, optimizer=None):
    sites = apartment_sites()
    if optimizer is None:
        optimizer = RandomSearch(
            max_iterations=12, population=6, seed=0, early_stop_eps=None
        )
    system = SurfOS(
        two_room_apartment(),
        frequency_hz=FREQ,
        optimizer=optimizer,
        grid_spacing_m=1.0,
        solve_budget=solve_budget,
    )
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            8,
            8,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    system.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    return system.boot()


def spy_system(solve_budget=None):
    spy = SpyRandomSearch(max_iterations=12, population=6, seed=0)
    spy.calls = []
    return build_system(solve_budget=solve_budget, optimizer=spy), spy


class TestWarmStartSeeding:
    def test_disabled_seeds_from_live_panel_config(self):
        # The pre-adaptive contract: every solve starts from the phases
        # the hardware is actually running, with no budget cap.
        system, spy = spy_system()
        system.orchestrator.optimize_coverage("bedroom")
        expected = (
            system.hardware.panel("s1").configuration.flat_phases().copy()
        )
        system.reoptimize(rounds=1)
        assert spy.calls, "optimizer never invoked"
        initial, budget = spy.calls[0]
        np.testing.assert_array_equal(initial, expected)
        assert budget is None

    def test_enabled_second_pass_warm_starts_from_cached_solution(self):
        system, spy = spy_system(SolveBudgetConfig(enabled=True))
        system.orchestrator.optimize_coverage("bedroom")
        system.reoptimize(rounds=1)
        first_pass_calls = len(spy.calls)
        cached = system.hardware.panel("s1").configuration.flat_phases().copy()
        system.reoptimize(rounds=1)
        initial, budget = spy.calls[first_pass_calls]
        # Pass 2 starts from pass 1's pushed optimum, not from scratch,
        # and the unchanged environment earns the floor budget.
        np.testing.assert_array_equal(initial, cached)
        assert budget == SolveBudgetConfig().floor

    def test_cold_pass_gets_full_budget(self):
        system, spy = spy_system(SolveBudgetConfig(enabled=True))
        system.orchestrator.optimize_coverage("bedroom")
        system.reoptimize(rounds=1)
        assert spy.calls[0][1] is None  # cold start: no cap


class TestSolverAccounting:
    def test_disabled_result_has_empty_solver_stats(self):
        system = build_system()
        system.orchestrator.optimize_coverage("bedroom")
        result = system.reoptimize(rounds=1)
        assert result.solver == {}
        counters = system.telemetry.snapshot().counters
        assert not any(name.startswith("solver.") for name in counters)

    def test_enabled_tracks_budgets_and_warm_hits(self):
        system = build_system(SolveBudgetConfig(enabled=True))
        system.orchestrator.optimize_coverage("bedroom")
        cold = system.reoptimize(rounds=1)
        assert cold.solver["cold_starts"] >= 1
        assert cold.solver["budgeted_iterations"] >= cold.solver[
            "used_iterations"
        ]
        warm = system.reoptimize(rounds=1)
        assert warm.solver["warm_hits"] >= 1
        assert warm.solver["drift_probes"] == warm.solver["warm_hits"]
        # Still drift: the floor budget is far below the cold budget.
        assert (
            warm.solver["budgeted_iterations"]
            < cold.solver["budgeted_iterations"]
        )
        counters = system.telemetry.snapshot().counters
        assert counters["solver.warm_hits"] == warm.solver["warm_hits"]

    def test_completing_a_task_purges_its_solutions(self):
        system = build_system(SolveBudgetConfig(enabled=True))
        task = system.orchestrator.optimize_coverage("bedroom")
        system.reoptimize(rounds=1)
        assert len(system.orchestrator._solutions) > 0
        system.orchestrator.complete_task(task.task_id)
        assert len(system.orchestrator._solutions) == 0


def sim_only_export(system, tmp_path, name):
    path = tmp_path / name
    system.telemetry.export_jsonl(str(path), sim_only=True)
    return path.read_text()


class TestByteIdentity:
    def test_default_matches_explicit_disabled(self, tmp_path):
        # solve_budget=None and SolveBudgetConfig(enabled=False) must
        # be indistinguishable down to the exported telemetry bytes.
        exports = []
        for i, budget in enumerate([None, SolveBudgetConfig(enabled=False)]):
            system = build_system(solve_budget=budget)
            system.orchestrator.optimize_coverage("bedroom")
            system.orchestrator.enhance_link("phone", snr=25.0)
            system.reoptimize(rounds=2)
            exports.append(sim_only_export(system, tmp_path, f"off{i}.jsonl"))
        assert exports[0] == exports[1]

    def test_enabled_repeats_are_byte_identical(self, tmp_path):
        exports = []
        for i in range(2):
            system = build_system(
                SolveBudgetConfig(enabled=True),
                optimizer=RandomSearch(
                    max_iterations=12, population=6, seed=0,
                    early_stop_eps=1e-3, early_stop_patience=2,
                ),
            )
            system.orchestrator.optimize_coverage("bedroom")
            system.reoptimize(rounds=1)
            system.reoptimize(rounds=1)
            exports.append(sim_only_export(system, tmp_path, f"on{i}.jsonl"))
        assert exports[0] == exports[1]
        assert '"solver.warm_hits"' in exports[0]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_enabled_matches_unbound_under_eval_backends(
        self, tmp_path, backend
    ):
        # The drift probe and the budgeted solves must not care where
        # candidate batches are evaluated.
        from repro.pipeline import EvaluationConfig, build_evaluator

        results = []
        for bind in (False, True):
            system = build_system(
                SolveBudgetConfig(enabled=True),
                optimizer=RandomSearch(
                    max_iterations=10, population=5, seed=0,
                    early_stop_eps=1e-3, early_stop_patience=2,
                ),
            )
            system.orchestrator.optimize_coverage("bedroom")
            evaluator = None
            if bind:
                evaluator = build_evaluator(
                    EvaluationConfig(backend=backend, parallelism=2)
                )
                system.orchestrator.optimizer.bind_evaluator(evaluator)
            try:
                first = system.reoptimize(rounds=1)
                second = system.reoptimize(rounds=1)
            finally:
                if evaluator is not None:
                    system.orchestrator.optimizer.unbind_evaluator()
                    evaluator.close()
            results.append((first.solver, second.solver, {
                sid: cfg.flat_phases().tobytes()
                for sid, cfg in (
                    ("s1", system.hardware.panel("s1").configuration),
                )
            }))
        assert results[0] == results[1]
