"""Stacked cross-task evaluation must be bit-identical to per-task.

The lockstep multi-task drivers and the :class:`StackedObjective`
batched kernels exist purely for throughput — every loss they produce
must match the serial per-task path bit for bit, or the determinism
contract (same seed → same trajectory at any backend/worker count)
breaks silently.
"""

import numpy as np
import pytest

from repro.channel import LinearChannelForm
from repro.core.errors import OptimizationError
from repro.em import LinkBudget
from repro.orchestrator.objectives import (
    CoverageGoal,
    CoverageObjective,
    JointObjective,
    LocalizationObjective,
    PoweringObjective,
    StackedObjective,
    export_objective,
    restore_objective,
)
from repro.orchestrator.optimizers import RandomSearch, SimulatedAnnealing


def random_form(rng, k=4, m=2, e=6, scale=1e-4):
    coeffs = scale * (
        rng.normal(size=(k, m, e)) + 1j * rng.normal(size=(k, m, e))
    )
    offset = scale * (rng.normal(size=(k, m)) + 1j * rng.normal(size=(k, m)))
    return LinearChannelForm("s", coeffs, offset)


def coverage_part(rng, weighted=False, e=6):
    form = random_form(rng, e=e)
    goal = None
    if weighted:
        goal = CoverageGoal(
            budget=LinkBudget(), weights=rng.uniform(0.1, 1.0, 4)
        )
    return CoverageObjective(
        form, amplitudes=rng.uniform(0.3, 1.0, e), goal=goal
    )


def localization_part(rng, e=6):
    form = random_form(rng, k=3, m=1, e=e)
    predictions = rng.normal(size=(4, 1, e)) + 1j * rng.normal(size=(4, 1, e))
    return LocalizationObjective(
        form, predictions=predictions, true_angle_indices=[0, 1, 2]
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestStackedBitIdentity:
    def test_coverage_stack_matches_per_task(self, rng):
        parts = [coverage_part(rng) for _ in range(4)]
        parts.append(coverage_part(rng, weighted=True))
        stacked = StackedObjective(parts)
        batches = [rng.uniform(0, 2 * np.pi, (7, 6)) for _ in parts]
        got = stacked.value_many_segments(batches)
        for part, batch, values in zip(parts, batches, got):
            assert values.tobytes() == part.value_many(batch).tobytes()

    def test_mixed_kinds_and_fallback_parts(self, rng):
        cov = coverage_part(rng)
        pow_part = PoweringObjective(
            random_form(rng), amplitudes=rng.uniform(0.3, 1.0, 6)
        )
        joint = JointObjective(
            [(coverage_part(rng), 1.0), (PoweringObjective(random_form(rng)), 0.3)]
        )
        loc = localization_part(rng)  # no batched kernel: falls back
        parts = [cov, pow_part, joint, loc]
        stacked = StackedObjective(parts)
        assert stacked.num_parts == 4
        assert stacked.stacked_parts == 3
        batches = [rng.uniform(0, 2 * np.pi, (5, 6)) for _ in parts]
        got = stacked.value_many_segments(batches)
        for part, batch, values in zip(parts, batches, got):
            assert values.tobytes() == part.value_many(batch).tobytes()

    def test_none_batches_skip_tasks(self, rng):
        parts = [coverage_part(rng) for _ in range(3)]
        stacked = StackedObjective(parts)
        batches = [rng.uniform(0, 2 * np.pi, (4, 6)), None,
                   rng.uniform(0, 2 * np.pi, (2, 6))]
        got = stacked.value_many_segments(batches)
        assert got[1] is None
        assert got[0].shape == (4,)
        assert got[2].shape == (2,)

    def test_unequal_row_counts_stay_bit_identical(self, rng):
        parts = [coverage_part(rng) for _ in range(3)]
        stacked = StackedObjective(parts)
        batches = [rng.uniform(0, 2 * np.pi, (p, 6)) for p in (3, 5, 3)]
        got = stacked.value_many_segments(batches)
        for part, batch, values in zip(parts, batches, got):
            assert values.tobytes() == part.value_many(batch).tobytes()

    def test_packed_operand_cache_reused_across_calls(self, rng):
        parts = [coverage_part(rng) for _ in range(3)]
        stacked = StackedObjective(parts)
        batches = [rng.uniform(0, 2 * np.pi, (4, 6)) for _ in parts]
        first = stacked.value_many_segments(batches)
        assert len(stacked._packed) == 1
        second = stacked.value_many_segments(batches)
        assert len(stacked._packed) == 1
        for a, b in zip(first, second):
            assert a.tobytes() == b.tobytes()


class TestStackedValidation:
    def test_scalar_entry_points_raise(self, rng):
        stacked = StackedObjective([coverage_part(rng)])
        phases = np.zeros(6)
        with pytest.raises(OptimizationError):
            stacked.value(phases)
        with pytest.raises(OptimizationError):
            stacked.value_and_gradient(phases)
        with pytest.raises(OptimizationError):
            stacked.value_many(phases[None, :])

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(OptimizationError):
            StackedObjective(
                [coverage_part(rng, e=6), coverage_part(rng, e=8)]
            )

    def test_empty_parts_raise(self):
        with pytest.raises(OptimizationError):
            StackedObjective([])

    def test_batch_count_mismatch_raises(self, rng):
        stacked = StackedObjective([coverage_part(rng)])
        with pytest.raises(OptimizationError):
            stacked.value_many_segments([None, None])


class TestExportRestore:
    def _roundtrip(self, objective):
        store = {}

        def put_array(a):
            token = f"t{len(store)}"
            store[token] = np.array(a)
            return token

        spec = export_objective(objective, put_array)
        return restore_objective(spec, store.__getitem__)

    def test_coverage_roundtrip_bitwise(self, rng):
        obj = coverage_part(rng, weighted=True)
        restored = self._roundtrip(obj)
        batch = rng.uniform(0, 2 * np.pi, (6, 6))
        assert restored.value_many(batch).tobytes() == obj.value_many(batch).tobytes()

    def test_joint_and_stacked_roundtrip_bitwise(self, rng):
        joint = JointObjective(
            [(coverage_part(rng), 0.7), (PoweringObjective(random_form(rng)), 0.3)]
        )
        stacked = StackedObjective([joint, coverage_part(rng)])
        restored = self._roundtrip(stacked)
        batches = [rng.uniform(0, 2 * np.pi, (4, 6)) for _ in range(2)]
        got = restored.value_many_segments(batches)
        want = stacked.value_many_segments(batches)
        for a, b in zip(got, want):
            assert a.tobytes() == b.tobytes()

    def test_unsupported_objective_raises(self):
        class Custom:
            pass

        with pytest.raises(OptimizationError):
            export_objective(Custom(), lambda a: "t")


class TestLockstepDrivers:
    def _serial_results(self, optimizer_cls, parts, rng, **kw):
        initials = [rng.uniform(0, 2 * np.pi, p.dim) for p in parts]
        serial = optimizer_cls(lockstep=False, **kw)
        serial_results = serial.optimize_many(parts, initials)
        lockstep = optimizer_cls(lockstep=True, **kw)
        lockstep_results = lockstep.optimize_many(parts, initials)
        return serial_results, lockstep_results

    def test_random_search_lockstep_bitwise(self, rng):
        parts = [coverage_part(rng) for _ in range(4)]
        serial, lockstep = self._serial_results(
            RandomSearch, parts, rng, max_iterations=12, seed=3, population=5
        )
        for a, b in zip(serial, lockstep):
            assert a.phases.tobytes() == b.phases.tobytes()
            assert a.loss == b.loss
            assert a.evaluations == b.evaluations
            assert a.iterations == b.iterations

    def test_simulated_annealing_lockstep_bitwise(self, rng):
        # Different dims would break stacking; same dim, varied parts.
        parts = [coverage_part(rng) for _ in range(3)]
        parts.append(localization_part(rng))
        serial, lockstep = self._serial_results(
            SimulatedAnnealing, parts, rng, steps=40, seed=9, speculation=8
        )
        for a, b in zip(serial, lockstep):
            assert a.phases.tobytes() == b.phases.tobytes()
            assert a.loss == b.loss
            assert a.evaluations == b.evaluations

    def test_single_task_falls_back_to_serial(self, rng):
        part = coverage_part(rng)
        initial = rng.uniform(0, 2 * np.pi, part.dim)
        opt = RandomSearch(max_iterations=6, seed=1)
        (many,) = opt.optimize_many([part], [initial])
        one = RandomSearch(max_iterations=6, seed=1).optimize(part, initial)
        assert many.phases.tobytes() == one.phases.tobytes()

    def test_length_mismatch_raises(self, rng):
        opt = RandomSearch(max_iterations=3, seed=0)
        with pytest.raises(OptimizationError):
            opt.optimize_many([coverage_part(rng)], [])
