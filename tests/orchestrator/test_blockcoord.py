"""Block-coordinate multi-surface optimization."""

import numpy as np
import pytest

from repro.core.errors import OptimizationError
from repro.core.units import ghz
from repro.em import LinkBudget
from repro.orchestrator import Adam, optimize_surfaces
from repro.orchestrator.blockcoord import coefficients_from_phases
from repro.services import connectivity

FREQ = ghz(28)


def builder(budget):
    def build(form, amplitudes):
        return connectivity.coverage_objective(
            form, amplitudes=amplitudes, budget=budget
        )

    return build


class TestCoefficients:
    def test_coefficients_carry_panel_amplitudes(self, small_prog, rng):
        phases = rng.uniform(0, 2 * np.pi, small_prog.num_elements)
        coeffs = coefficients_from_phases(small_prog, phases)
        assert np.allclose(np.abs(coeffs), 1.0)
        assert np.allclose(np.angle(coeffs), np.angle(np.exp(1j * phases)))


class TestOptimizeSurfaces:
    def test_two_surface_joint_improves_on_flat(
        self, simulator, ap, bedroom_points, small_passive, small_prog, budget
    ):
        model = simulator.build(
            ap, bedroom_points, [small_passive, small_prog]
        )
        flat = {
            p.panel_id: p.configuration.coefficients().reshape(-1)
            for p in (small_passive, small_prog)
        }
        flat_snr = np.median(connectivity.snr_map_db(model, flat, budget))
        results = optimize_surfaces(
            model,
            [small_passive, small_prog],
            builder(budget),
            optimizer=Adam(max_iterations=60),
            rounds=2,
        )
        assert set(results) == {"passive", "prog"}
        optimized = {
            sid: coefficients_from_phases(
                panel, results[sid].phases
            )
            for sid, panel in (
                ("passive", small_passive),
                ("prog", small_prog),
            )
        }
        opt_snr = np.median(connectivity.snr_map_db(model, optimized, budget))
        assert opt_snr > flat_snr

    def test_projection_respects_hardware(
        self, simulator, ap, bedroom_points, small_prog, budget
    ):
        model = simulator.build(ap, bedroom_points, [small_prog])
        results = optimize_surfaces(
            model,
            [small_prog],
            builder(budget),
            optimizer=Adam(max_iterations=30),
            rounds=1,
            project=True,
        )
        phases = results["prog"].phases
        levels = 2 ** small_prog.spec.phase_bits
        assert len(np.unique(np.round(phases, 9))) <= levels

    def test_warm_start_used(
        self, simulator, ap, bedroom_points, small_prog, budget, rng
    ):
        model = simulator.build(ap, bedroom_points, [small_prog])
        warm = rng.uniform(0, 2 * np.pi, small_prog.num_elements)
        result = optimize_surfaces(
            model,
            [small_prog],
            builder(budget),
            optimizer=Adam(max_iterations=1, learning_rate=1e-12),
            rounds=1,
            initial_phases={"prog": warm},
            project=False,
        )["prog"]
        # With a frozen optimizer the answer stays at the warm start.
        assert np.allclose(
            np.exp(1j * result.phases), np.exp(1j * warm), atol=1e-6
        )

    def test_validation(
        self, simulator, ap, bedroom_points, small_prog, budget
    ):
        model = simulator.build(ap, bedroom_points, [small_prog])
        with pytest.raises(OptimizationError):
            optimize_surfaces(
                model, [small_prog], builder(budget), rounds=0
            )
        other = simulator.build(ap, bedroom_points, [])
        with pytest.raises(OptimizationError):
            optimize_surfaces(other, [small_prog], builder(budget))
