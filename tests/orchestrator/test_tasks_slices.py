"""Task lifecycle and resource-slice conflict semantics."""

import numpy as np
import pytest

from repro.core.errors import SchedulingError
from repro.core.units import ghz
from repro.orchestrator import ResourceSlice, ServiceTask, ServiceType, TaskState
from repro.orchestrator.slices import SliceAllocator

BAND = (ghz(27), ghz(29))
OTHER_BAND = (ghz(59), ghz(61))


def full_slice(surface="s1", band=BAND, time=1.0, group="", n=16, mask=None):
    m = np.ones(n, dtype=bool) if mask is None else mask
    return ResourceSlice(
        surface_id=surface,
        element_mask=m,
        band_hz=band,
        time_fraction=time,
        shared_group=group,
    )


class TestTaskLifecycle:
    def test_auto_ids_unique(self):
        a = ServiceTask(ServiceType.COVERAGE, {})
        b = ServiceTask(ServiceType.COVERAGE, {})
        assert a.task_id != b.task_id

    def test_legal_path_to_completion(self):
        t = ServiceTask(ServiceType.SENSING, {}, duration_s=10.0)
        t.transition(TaskState.READY)
        t.transition(TaskState.RUNNING)
        t.transition(TaskState.IDLE)
        t.transition(TaskState.READY)
        t.transition(TaskState.RUNNING)
        t.transition(TaskState.COMPLETED)
        assert t.is_terminal

    def test_illegal_transition_rejected(self):
        t = ServiceTask(ServiceType.LINK, {})
        with pytest.raises(SchedulingError):
            t.transition(TaskState.RUNNING)  # must go through READY

    def test_terminal_states_frozen(self):
        t = ServiceTask(ServiceType.LINK, {})
        t.transition(TaskState.FAILED, reason="x")
        assert t.failure_reason == "x"
        with pytest.raises(SchedulingError):
            t.transition(TaskState.READY)

    def test_expiry(self):
        t = ServiceTask(ServiceType.POWERING, {}, duration_s=5.0, created_at=10.0)
        assert not t.expired(14.0)
        assert t.expired(15.0)
        forever = ServiceTask(ServiceType.POWERING, {})
        assert not forever.expired(1e9)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            ServiceTask(ServiceType.LINK, {}, priority=-1)
        with pytest.raises(SchedulingError):
            ServiceTask(ServiceType.LINK, {}, duration_s=0.0)

    def test_metrics_recording(self):
        t = ServiceTask(ServiceType.COVERAGE, {})
        t.record_metrics(median_snr_db=25.0)
        t.record_metrics(min_snr_db=12.0)
        assert t.metrics == {"median_snr_db": 25.0, "min_snr_db": 12.0}


class TestSliceConflicts:
    def test_same_everything_conflicts(self):
        assert full_slice().conflicts_with(full_slice())

    def test_different_surface_no_conflict(self):
        assert not full_slice("s1").conflicts_with(full_slice("s2"))

    def test_disjoint_bands_no_conflict(self):
        assert not full_slice(band=BAND).conflicts_with(
            full_slice(band=OTHER_BAND)
        )

    def test_disjoint_elements_no_conflict(self):
        left = np.zeros(16, dtype=bool)
        left[:8] = True
        right = ~left
        assert not full_slice(mask=left).conflicts_with(full_slice(mask=right))

    def test_time_shares_fit(self):
        a = full_slice(time=0.5)
        b = full_slice(time=0.5)
        assert not a.conflicts_with(b)
        c = full_slice(time=0.6)
        assert a.conflicts_with(c)

    def test_shared_group_never_conflicts(self):
        a = full_slice(group="joint")
        b = full_slice(group="joint")
        assert not a.conflicts_with(b)
        c = full_slice(group="other")
        assert a.conflicts_with(c)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            full_slice(mask=np.zeros(4, dtype=bool))
        with pytest.raises(SchedulingError):
            full_slice(time=0.0)
        with pytest.raises(SchedulingError):
            full_slice(band=(ghz(29), ghz(27)))


class TestAllocator:
    def test_allocate_and_release(self):
        alloc = SliceAllocator()
        alloc.allocate("t1", [full_slice()])
        assert alloc.holders("s1") == ["t1"]
        assert not alloc.can_allocate(full_slice())
        assert alloc.release("t1") == 1
        assert alloc.can_allocate(full_slice())

    def test_conflicting_tasks_reported(self):
        alloc = SliceAllocator()
        alloc.allocate("low", [full_slice()])
        assert alloc.conflicting_tasks(full_slice()) == ["low"]

    def test_atomic_allocation(self):
        from repro.core.errors import AdmissionError

        alloc = SliceAllocator()
        alloc.allocate("t1", [full_slice("s2")])
        with pytest.raises(AdmissionError):
            alloc.allocate("t2", [full_slice("s1"), full_slice("s2")])
        # s1 must not be partially held after the failed allocation.
        assert alloc.holders("s1") == []

    def test_mutually_conflicting_request_rejected(self):
        from repro.core.errors import AdmissionError

        alloc = SliceAllocator()
        with pytest.raises(AdmissionError):
            alloc.allocate("t1", [full_slice(), full_slice()])

    def test_utilization(self):
        alloc = SliceAllocator()
        half = np.zeros(16, dtype=bool)
        half[:8] = True
        alloc.allocate("t1", [full_slice(mask=half, time=0.5)])
        assert alloc.utilization("s1", 16) == pytest.approx(0.25)
        with pytest.raises(SchedulingError):
            alloc.utilization("s1", 0)
