"""Optimizer behaviors on analytic test objectives."""

import numpy as np
import pytest

from repro.channel import LinearChannelForm
from repro.orchestrator import (
    Adam,
    GradientDescent,
    RandomSearch,
    SimulatedAnnealing,
    panel_projection,
)
from repro.orchestrator.objectives import CoverageObjective, Objective


class Quadratic(Objective):
    """Simple convex test loss: ||φ − target||²."""

    def __init__(self, target):
        self.target = np.asarray(target, dtype=float)
        self.dim = self.target.size

    def value_and_gradient(self, phases):
        phases = np.asarray(phases, dtype=float).reshape(-1)
        diff = phases - self.target
        return float(diff @ diff), 2.0 * diff


def focusing_objective(rng, e=12):
    """Single-point coverage — global optimum is phase alignment."""
    coeffs = 2e-4 * np.exp(1j * rng.uniform(0, 2 * np.pi, (1, 1, e)))
    form = LinearChannelForm("s", coeffs, np.zeros((1, 1), dtype=complex))
    return CoverageObjective(form)


@pytest.fixture()
def rng():
    return np.random.default_rng(3)


@pytest.mark.parametrize(
    "optimizer",
    [
        GradientDescent(learning_rate=0.1, max_iterations=400),
        GradientDescent(learning_rate=0.05, momentum=0.9, max_iterations=400),
        Adam(learning_rate=0.2, max_iterations=400),
    ],
)
def test_gradient_optimizers_solve_quadratic(optimizer, rng):
    target = rng.normal(size=8)
    result = optimizer.optimize(Quadratic(target), np.zeros(8))
    assert result.loss < 1e-3
    assert np.allclose(result.phases, target, atol=0.05)


def test_history_monotone_for_gd_on_quadratic(rng):
    result = GradientDescent(learning_rate=0.1, max_iterations=100).optimize(
        Quadratic(rng.normal(size=4)), np.zeros(4)
    )
    diffs = np.diff(result.history)
    assert np.all(diffs <= 1e-12)


def test_convergence_flag(rng):
    result = GradientDescent(
        learning_rate=0.2, max_iterations=5000, tolerance=1e-10
    ).optimize(Quadratic(rng.normal(size=4)), np.zeros(4))
    assert result.converged
    assert result.iterations < 5000


@pytest.mark.parametrize(
    "optimizer",
    [
        Adam(max_iterations=150),
        RandomSearch(max_iterations=40, population=24, seed=1),
        SimulatedAnnealing(steps=800, seed=1),
    ],
)
def test_all_optimizers_improve_focusing(optimizer, rng):
    objective = focusing_objective(rng)
    x0 = rng.uniform(0, 2 * np.pi, objective.dim)
    start = objective.value(x0)
    result = optimizer.optimize(objective, x0)
    assert result.loss < start


def test_adam_near_global_on_focusing(rng):
    objective = focusing_objective(rng)
    x0 = rng.uniform(0, 2 * np.pi, objective.dim)
    result = Adam(max_iterations=400, learning_rate=0.2).optimize(objective, x0)
    # Global optimum: all contributions aligned.
    ideal = objective.value(
        -np.angle(objective.form.coeffs[0, 0])
    )
    assert result.loss == pytest.approx(ideal, rel=0.02)


def test_projection_applied_to_result(rng):
    from repro.geometry import vec3
    from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

    panel = SurfacePanel(
        "p", GENERIC_PROGRAMMABLE_28, 3, 4, vec3(0, 0, 1), vec3(0, -1, 0)
    )
    objective = Quadratic(rng.uniform(0, 2 * np.pi, 12))
    result = Adam(max_iterations=50).optimize(
        objective, np.zeros(12), projection=panel_projection(panel)
    )
    levels = 2 ** GENERIC_PROGRAMMABLE_28.phase_bits
    assert len(np.unique(np.round(result.phases, 9))) <= levels


def test_projected_each_step_gd(rng):
    project = lambda p: np.clip(p, 0.0, 1.0)
    result = GradientDescent(
        learning_rate=0.3, max_iterations=50, project_each_step=True
    ).optimize(Quadratic(np.full(4, 5.0)), np.zeros(4), projection=project)
    assert np.allclose(result.phases, 1.0)


def test_annealing_validation():
    with pytest.raises(Exception):
        SimulatedAnnealing(subset_fraction=0.0).optimize(
            Quadratic(np.zeros(4)), np.zeros(4)
        )


def test_random_search_deterministic_with_seed(rng):
    objective = Quadratic(np.ones(6))
    a = RandomSearch(seed=42, max_iterations=10).optimize(objective, np.zeros(6))
    b = RandomSearch(seed=42, max_iterations=10).optimize(objective, np.zeros(6))
    assert np.allclose(a.phases, b.phases)
    assert a.loss == b.loss


class CountingQuadratic(Quadratic):
    """Quadratic that records how work arrives: batched or one-by-one."""

    def __init__(self, target):
        super().__init__(target)
        self.batch_calls = 0
        self.batch_rows = 0

    def value_many(self, phases_batch):
        batch = self._check_batch(phases_batch)
        self.batch_calls += 1
        self.batch_rows += batch.shape[0]
        return np.array([self.value(row) for row in batch])


def test_random_search_iteration_and_evaluation_accounting():
    result = RandomSearch(max_iterations=12, population=6, seed=0).optimize(
        Quadratic(np.ones(5)), np.zeros(5)
    )
    # The initial incumbent evaluation is history[0], not an iteration.
    assert result.iterations == 12
    assert len(result.history) == 13
    assert result.evaluations == 1 + 12 * 6 + 1


def test_annealing_iteration_and_evaluation_accounting():
    result = SimulatedAnnealing(steps=30, speculation=8, seed=0).optimize(
        Quadratic(np.ones(5)), np.zeros(5)
    )
    assert result.iterations == 30
    assert len(result.history) == 31
    # Speculation may evaluate proposals it then discards as stale, so
    # the count covers at least every consumed step plus bookends.
    assert result.evaluations >= 30 + 2


def test_gradient_optimizers_report_evaluations(rng):
    result = GradientDescent(learning_rate=0.1, max_iterations=50).optimize(
        Quadratic(rng.normal(size=4)), np.zeros(4)
    )
    assert result.evaluations == len(result.history) + 1


def test_population_routed_through_value_many():
    objective = CountingQuadratic(np.ones(4))
    RandomSearch(max_iterations=5, population=7, seed=0).optimize(
        objective, np.zeros(4)
    )
    assert objective.batch_calls == 5
    assert objective.batch_rows == 5 * 7

    objective = CountingQuadratic(np.ones(4))
    SimulatedAnnealing(steps=16, speculation=4, seed=0).optimize(
        objective, np.zeros(4)
    )
    assert objective.batch_calls >= 4
    assert objective.batch_rows >= 16


def test_bound_telemetry_counts_objective_evaluations():
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    optimizer = RandomSearch(max_iterations=4, population=5, seed=0)
    optimizer.bind_telemetry(telemetry)
    result = optimizer.optimize(Quadratic(np.ones(3)), np.zeros(3))
    counted = telemetry.get_counter("optimizer.objective_evaluations")
    assert counted == result.evaluations == 1 + 4 * 5 + 1


def test_value_many_matches_value_on_channel_objective(rng):
    objective = focusing_objective(rng)
    batch = rng.uniform(0, 2 * np.pi, (5, objective.dim))
    np.testing.assert_allclose(
        objective.value_many(batch),
        [objective.value(row) for row in batch],
        atol=1e-9,
    )
