"""Scheduler: admission, preemption, idle reclaim, expiry."""

import numpy as np
import pytest

from repro.core.errors import AdmissionError, SchedulingError
from repro.core.units import ghz
from repro.orchestrator import (
    ResourceSlice,
    Scheduler,
    ServiceTask,
    ServiceType,
    TaskState,
)

BAND = (ghz(27), ghz(29))


def full_slice(surface="s1", group="", time=1.0):
    return ResourceSlice(
        surface_id=surface,
        element_mask=np.ones(16, dtype=bool),
        band_hz=BAND,
        time_fraction=time,
        shared_group=group,
    )


def make_task(priority=5, service=ServiceType.COVERAGE, duration=None, t0=0.0):
    return ServiceTask(
        service, {}, priority=priority, duration_s=duration, created_at=t0
    )


@pytest.fixture()
def sched():
    return Scheduler()


class TestAdmission:
    def test_admit_ready(self, sched):
        task = sched.admit(make_task(), [full_slice()])
        assert task.state is TaskState.READY
        assert len(sched.slices_of(task.task_id)) == 1

    def test_conflicting_equal_priority_fails(self, sched):
        sched.admit(make_task(priority=5), [full_slice()])
        with pytest.raises(AdmissionError):
            sched.admit(make_task(priority=5), [full_slice()])

    def test_failed_task_marked(self, sched):
        sched.admit(make_task(priority=5), [full_slice()])
        loser = make_task(priority=5)
        with pytest.raises(AdmissionError):
            sched.admit(loser, [full_slice()])
        assert loser.state is TaskState.FAILED
        assert "no feasible slice" in loser.failure_reason

    def test_time_division_coexists(self, sched):
        sched.admit(make_task(), [full_slice(time=0.5)])
        sched.admit(make_task(), [full_slice(time=0.5)])
        assert len(sched.tasks(TaskState.READY)) == 2

    def test_shared_group_coexists(self, sched):
        sched.admit(make_task(), [full_slice(group="joint")])
        sched.admit(make_task(), [full_slice(group="joint")])
        groups = sched.shared_groups()
        assert len(groups["joint"]) == 2


class TestPreemption:
    def test_higher_priority_preempts(self, sched):
        low = sched.admit(make_task(priority=2), [full_slice()])
        high = sched.admit(make_task(priority=8), [full_slice()])
        assert high.state is TaskState.READY
        assert low.state is TaskState.PREEMPTED
        assert sched.preemption_count == 1

    def test_equal_priority_does_not_preempt(self, sched):
        sched.admit(make_task(priority=5), [full_slice()])
        with pytest.raises(AdmissionError):
            sched.admit(make_task(priority=5), [full_slice()])
        assert sched.preemption_count == 0

    def test_preemption_disabled(self, sched):
        sched.admit(make_task(priority=2), [full_slice()])
        with pytest.raises(AdmissionError):
            sched.admit(
                make_task(priority=9), [full_slice()], allow_preemption=False
            )

    def test_preempted_task_can_resume_later(self, sched):
        low = sched.admit(make_task(priority=2), [full_slice()])
        high = sched.admit(make_task(priority=8), [full_slice()])
        sched.complete(high.task_id)
        low.transition(TaskState.READY)
        assert low.state is TaskState.READY


class TestLifecycleOps:
    def test_start_and_idle_releases_resources(self, sched):
        task = sched.admit(make_task(), [full_slice()])
        sched.start(task.task_id)
        assert task.state is TaskState.RUNNING
        sched.set_idle(task.task_id)
        assert task.state is TaskState.IDLE
        # Slice is free now.
        other = sched.admit(make_task(), [full_slice()])
        assert other.state is TaskState.READY

    def test_resume_from_idle(self, sched):
        task = sched.admit(make_task(), [full_slice()])
        sched.start(task.task_id)
        sched.set_idle(task.task_id)
        sched.resume(task.task_id, [full_slice()])
        assert task.state is TaskState.READY

    def test_resume_requires_idle(self, sched):
        task = sched.admit(make_task(), [full_slice()])
        with pytest.raises(SchedulingError):
            sched.resume(task.task_id, [full_slice()])

    def test_complete_and_fail_release(self, sched):
        a = sched.admit(make_task(), [full_slice("s1")])
        b = sched.admit(make_task(), [full_slice("s2")])
        sched.start(a.task_id)
        sched.complete(a.task_id)
        sched.fail(b.task_id, reason="hardware fault")
        assert a.state is TaskState.COMPLETED
        assert b.state is TaskState.FAILED
        assert b.failure_reason == "hardware fault"
        assert sched.allocator.tasks_with_allocations() == []

    def test_reap_expired(self, sched):
        short = sched.admit(make_task(duration=5.0), [full_slice("s1")])
        forever = sched.admit(make_task(), [full_slice("s2")])
        sched.start(short.task_id)
        sched.start(forever.task_id)
        finished = sched.reap_expired(now=6.0)
        assert finished == [short.task_id]
        assert short.state is TaskState.COMPLETED
        assert forever.state is TaskState.RUNNING

    def test_unknown_task(self, sched):
        with pytest.raises(SchedulingError):
            sched.task("ghost")

    def test_tasks_sorted_by_priority(self, sched):
        a = sched.admit(make_task(priority=1), [full_slice("s1")])
        b = sched.admit(make_task(priority=9), [full_slice("s2")])
        listed = sched.tasks()
        assert listed[0] is b and listed[1] is a
