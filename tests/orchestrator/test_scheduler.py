"""Scheduler: admission, preemption, idle reclaim, expiry."""

import numpy as np
import pytest

from repro.core.errors import AdmissionError, SchedulingError
from repro.core.units import ghz
from repro.orchestrator import (
    ResourceSlice,
    Scheduler,
    ServiceTask,
    ServiceType,
    TaskState,
)

BAND = (ghz(27), ghz(29))


def full_slice(surface="s1", group="", time=1.0):
    return ResourceSlice(
        surface_id=surface,
        element_mask=np.ones(16, dtype=bool),
        band_hz=BAND,
        time_fraction=time,
        shared_group=group,
    )


def make_task(priority=5, service=ServiceType.COVERAGE, duration=None, t0=0.0):
    return ServiceTask(
        service, {}, priority=priority, duration_s=duration, created_at=t0
    )


@pytest.fixture()
def sched():
    return Scheduler()


class TestAdmission:
    def test_admit_ready(self, sched):
        task = sched.admit(make_task(), [full_slice()])
        assert task.state is TaskState.READY
        assert len(sched.slices_of(task.task_id)) == 1

    def test_conflicting_equal_priority_fails(self, sched):
        sched.admit(make_task(priority=5), [full_slice()])
        with pytest.raises(AdmissionError):
            sched.admit(make_task(priority=5), [full_slice()])

    def test_failed_task_marked(self, sched):
        sched.admit(make_task(priority=5), [full_slice()])
        loser = make_task(priority=5)
        with pytest.raises(AdmissionError):
            sched.admit(loser, [full_slice()])
        assert loser.state is TaskState.FAILED
        assert "no feasible slice" in loser.failure_reason

    def test_time_division_coexists(self, sched):
        sched.admit(make_task(), [full_slice(time=0.5)])
        sched.admit(make_task(), [full_slice(time=0.5)])
        assert len(sched.tasks(TaskState.READY)) == 2

    def test_shared_group_coexists(self, sched):
        sched.admit(make_task(), [full_slice(group="joint")])
        sched.admit(make_task(), [full_slice(group="joint")])
        groups = sched.shared_groups()
        assert len(groups["joint"]) == 2


class TestPreemption:
    def test_higher_priority_preempts(self, sched):
        low = sched.admit(make_task(priority=2), [full_slice()])
        high = sched.admit(make_task(priority=8), [full_slice()])
        assert high.state is TaskState.READY
        assert low.state is TaskState.PREEMPTED
        assert sched.preemption_count == 1

    def test_equal_priority_does_not_preempt(self, sched):
        sched.admit(make_task(priority=5), [full_slice()])
        with pytest.raises(AdmissionError):
            sched.admit(make_task(priority=5), [full_slice()])
        assert sched.preemption_count == 0

    def test_preemption_disabled(self, sched):
        sched.admit(make_task(priority=2), [full_slice()])
        with pytest.raises(AdmissionError):
            sched.admit(
                make_task(priority=9), [full_slice()], allow_preemption=False
            )

    def test_preempted_task_can_resume_later(self, sched):
        low = sched.admit(make_task(priority=2), [full_slice()])
        high = sched.admit(make_task(priority=8), [full_slice()])
        sched.complete(high.task_id)
        low.transition(TaskState.READY)
        assert low.state is TaskState.READY


class TestLifecycleOps:
    def test_start_and_idle_releases_resources(self, sched):
        task = sched.admit(make_task(), [full_slice()])
        sched.start(task.task_id)
        assert task.state is TaskState.RUNNING
        sched.set_idle(task.task_id)
        assert task.state is TaskState.IDLE
        # Slice is free now.
        other = sched.admit(make_task(), [full_slice()])
        assert other.state is TaskState.READY

    def test_resume_from_idle(self, sched):
        task = sched.admit(make_task(), [full_slice()])
        sched.start(task.task_id)
        sched.set_idle(task.task_id)
        sched.resume(task.task_id, [full_slice()])
        assert task.state is TaskState.READY

    def test_resume_requires_idle(self, sched):
        task = sched.admit(make_task(), [full_slice()])
        with pytest.raises(SchedulingError):
            sched.resume(task.task_id, [full_slice()])

    def test_complete_and_fail_release(self, sched):
        a = sched.admit(make_task(), [full_slice("s1")])
        b = sched.admit(make_task(), [full_slice("s2")])
        sched.start(a.task_id)
        sched.complete(a.task_id)
        sched.fail(b.task_id, reason="hardware fault")
        assert a.state is TaskState.COMPLETED
        assert b.state is TaskState.FAILED
        assert b.failure_reason == "hardware fault"
        assert sched.allocator.tasks_with_allocations() == []

    def test_reap_expired(self, sched):
        short = sched.admit(make_task(duration=5.0), [full_slice("s1")])
        forever = sched.admit(make_task(), [full_slice("s2")])
        sched.start(short.task_id)
        sched.start(forever.task_id)
        finished = sched.reap_expired(now=6.0)
        assert finished == [short.task_id]
        assert short.state is TaskState.COMPLETED
        assert forever.state is TaskState.RUNNING

    def test_unknown_task(self, sched):
        with pytest.raises(SchedulingError):
            sched.task("ghost")

    def test_tasks_sorted_by_priority(self, sched):
        a = sched.admit(make_task(priority=1), [full_slice("s1")])
        b = sched.admit(make_task(priority=9), [full_slice("s2")])
        listed = sched.tasks()
        assert listed[0] is b and listed[1] is a


class TestReapReadyRegression:
    """Expired READY tasks must free their slices (the slice leak)."""

    def test_expired_ready_task_is_reaped_and_slices_freed(self, sched):
        # Admitted but never started: exactly the state a request parked
        # behind a coalescing window sits in when its duration lapses.
        parked = sched.admit(make_task(duration=5.0), [full_slice("s1")])
        assert parked.state is TaskState.READY
        finished = sched.reap_expired(now=6.0)
        assert finished == [parked.task_id]
        assert parked.state is TaskState.COMPLETED
        # The leak: before the fix these slices stayed registered
        # forever, blocking every future admission on the surface.
        assert sched.allocator.tasks_with_allocations() == []
        replacement = sched.admit(make_task(), [full_slice("s1")])
        assert replacement.state is TaskState.READY

    def test_reaped_counter_emitted(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        sched = Scheduler(telemetry=telemetry)
        sched.admit(make_task(duration=1.0), [full_slice("s1")])
        sched.reap_expired(now=2.0)
        counters = telemetry.snapshot().counters
        assert counters["scheduler.reaped"] == 1


class TestBatchAdmission:
    def test_batch_admits_in_priority_order(self, sched):
        low = make_task(priority=2, t0=0.0)
        high = make_task(priority=8, t0=1.0)
        outcomes = sched.admit_batch(
            [(low, [full_slice()]), (high, [full_slice()])]
        )
        # Priority order: high admitted first, low then failed (no
        # preemption of an equal-or-higher task).
        assert outcomes[high.task_id] is None
        assert outcomes[low.task_id] is not None
        assert high.state is TaskState.READY
        assert low.state is TaskState.FAILED

    def test_batch_failure_does_not_abort_rest(self, sched):
        a = make_task(priority=5)
        b = make_task(priority=5)
        c = make_task(priority=5)
        outcomes = sched.admit_batch(
            [
                (a, [full_slice("s1")]),
                (b, [full_slice("s1")]),  # conflicts with a
                (c, [full_slice("s2")]),
            ]
        )
        assert outcomes[a.task_id] is None
        assert outcomes[b.task_id] is not None
        assert outcomes[c.task_id] is None

    def test_batch_shared_group_all_admitted(self, sched):
        tasks = [make_task() for _ in range(4)]
        outcomes = sched.admit_batch(
            [(t, [full_slice(group="joint")]) for t in tasks]
        )
        assert all(reason is None for reason in outcomes.values())
        assert len(sched.tasks(TaskState.READY)) == 4

    def test_batch_telemetry_counters(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        sched = Scheduler(telemetry=telemetry)
        sched.admit_batch(
            [
                (make_task(), [full_slice("s1")]),
                (make_task(), [full_slice("s1")]),
            ]
        )
        counters = telemetry.snapshot().counters
        assert counters["scheduler.batch_admissions"] == 1
        assert counters["scheduler.batch_admitted_tasks"] == 2
        assert counters["scheduler.batch_failures"] == 1
