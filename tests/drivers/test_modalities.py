"""Phase, amplitude, polarization, and frequency driver behaviors."""

import math

import numpy as np
import pytest

from repro.core import CapabilityError, ConfigurationError, Granularity
from repro.core.units import ghz
from repro.drivers import (
    AmplitudeDriver,
    FrequencySelectiveDriver,
    OFF_RESONANCE_AMPLITUDE,
    PassivePhaseDriver,
    PolarizationDriver,
    ProgrammablePhaseDriver,
)
from repro.geometry import vec3
from repro.surfaces import (
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    OperationMode,
    SignalProperty,
    SurfacePanel,
    SurfaceSpec,
)

FREQ = ghz(28)


def make_spec(props, **overrides):
    base = dict(
        design="mod-test",
        band_hz=(ghz(2.0), ghz(6.0)),
        properties=frozenset(props),
        operation_mode=OperationMode.REFLECTIVE,
        reconfigurable=True,
        control_delay_s=0.0,
    )
    base.update(overrides)
    return SurfaceSpec(**base)


def make_panel(spec, rows=4, cols=4, pid="panel"):
    return SurfacePanel(pid, spec, rows, cols, vec3(0, 0, 1.5), vec3(0, -1, 0))


class TestPhaseDrivers:
    def test_driver_requires_phase_capability(self):
        spec = make_spec([SignalProperty.AMPLITUDE])
        with pytest.raises(CapabilityError):
            ProgrammablePhaseDriver(make_panel(spec))

    def test_beam_codebook_load_and_activate(self):
        panel = make_panel(GENERIC_PROGRAMMABLE_28)
        drv = ProgrammablePhaseDriver(panel)
        targets = [vec3(2, -3, 1), vec3(3, -2, 1)]
        names = drv.load_beam_codebook(vec3(-2, -2, 2), targets, FREQ, now=0.0)
        drv.commit(now=1.0)
        assert names == ["beam0", "beam1"]
        assert drv.active_configuration_name == "beam0"
        assert set(drv.stored_configurations()) == {"beam0", "beam1"}

    def test_region_codebook_size(self):
        panel = make_panel(GENERIC_PROGRAMMABLE_28)
        drv = ProgrammablePhaseDriver(panel)
        names = drv.load_region_codebook(
            vec3(-2, -2, 2), (3, -3, 0), (2, 2, 0), FREQ, beams_x=3, beams_y=2
        )
        assert len(names) == 6

    def test_passive_fabricate_focus(self):
        panel = make_panel(GENERIC_PASSIVE_28, pid="pas")
        drv = PassivePhaseDriver(panel)
        result = drv.fabricate_focus(vec3(-2, -2, 2), vec3(3, -3, 1), FREQ)
        assert result.configuration.shape == panel.shape
        assert drv.fabricated


class TestAmplitudeDriver:
    @pytest.fixture()
    def driver(self):
        spec = make_spec([SignalProperty.AMPLITUDE])
        return AmplitudeDriver(make_panel(spec))

    def test_set_amplitudes_binary_mask(self, driver):
        mask = np.zeros((4, 4))
        mask[:2] = 1.0
        driver.set_amplitudes(mask, now=0.0)
        driver.commit(now=0.0)
        assert np.allclose(driver.panel.configuration.amplitudes, mask)

    def test_non_binary_mask_rejected(self, driver):
        from repro.core import SurfaceConfiguration

        cfg = SurfaceConfiguration(
            phases=np.zeros((4, 4)), amplitudes=np.full((4, 4), 0.5)
        )
        with pytest.raises(ConfigurationError):
            driver.push_configuration("bad", cfg, now=0.0)

    def test_phase_shifts_rejected(self, driver):
        from repro.core import SurfaceConfiguration

        cfg = SurfaceConfiguration(phases=np.full((4, 4), 1.0))
        with pytest.raises(ConfigurationError):
            driver.push_configuration("bad", cfg, now=0.0)

    def test_greedy_mask_keeps_top_fraction(self, driver):
        scores = np.arange(16.0)
        mask = driver.greedy_mask(scores, keep_fraction=0.25)
        assert mask.sum() == 4
        assert mask.reshape(-1)[-4:].all()

    def test_greedy_mask_validation(self, driver):
        with pytest.raises(ConfigurationError):
            driver.greedy_mask(np.arange(16.0), keep_fraction=0.0)
        with pytest.raises(ConfigurationError):
            driver.greedy_mask(np.arange(5.0))


class TestPolarizationDriver:
    @pytest.fixture()
    def driver(self):
        spec = make_spec([SignalProperty.POLARIZATION])
        return PolarizationDriver(make_panel(spec))

    def test_aligned_polarization_full_coupling(self, driver):
        driver.align_to(0.7, now=0.0)
        driver.commit(now=0.0)
        amps = driver.effective_amplitudes(0.7)
        assert np.allclose(amps, 1.0)

    def test_crossed_polarization_nulls(self, driver):
        driver.align_to(0.0, now=0.0)
        driver.commit(now=0.0)
        amps = driver.effective_amplitudes(math.pi / 2)
        assert np.allclose(amps, 0.0, atol=1e-12)

    def test_effective_configuration_amplitudes(self, driver):
        driver.set_polarizations(np.full((4, 4), math.pi / 3), now=0.0)
        driver.commit(now=0.0)
        cfg = driver.effective_configuration(0.0)
        assert np.allclose(cfg.amplitudes, math.cos(math.pi / 3))


class TestFrequencyDriver:
    BANDS = [(ghz(2.3), ghz(2.5)), (ghz(4.9), ghz(5.1))]

    @pytest.fixture()
    def driver(self):
        spec = make_spec(
            [SignalProperty.FREQUENCY], granularity=Granularity.ROW
        )
        return FrequencySelectiveDriver(make_panel(spec), bands_hz=self.BANDS)

    def test_row_band_assignment(self, driver):
        driver.set_row_bands([0, 0, 1, 1])
        tuned_24 = driver.rows_tuned_to(ghz(2.4))
        tuned_5 = driver.rows_tuned_to(ghz(5.0))
        assert list(tuned_24) == [True, True, False, False]
        assert list(tuned_5) == [False, False, True, True]

    def test_effective_amplitudes_per_carrier(self, driver):
        driver.set_row_bands([0, 1, 0, 1])
        amps = driver.effective_amplitudes(ghz(2.4))
        assert np.allclose(amps[0], 1.0)
        assert np.allclose(amps[1], OFF_RESONANCE_AMPLITUDE)

    def test_allocate_rows_proportional(self, driver):
        allocation = driver.allocate_rows({0: 3.0, 1: 1.0})
        assert allocation[0] == 3
        assert allocation[1] == 1
        assert driver.rows_tuned_to(ghz(2.4)).sum() == 3

    def test_validation(self, driver):
        with pytest.raises(ConfigurationError):
            driver.set_row_bands([0, 0, 0])  # wrong length
        with pytest.raises(ConfigurationError):
            driver.set_row_bands([0, 0, 0, 5])  # bad index
        with pytest.raises(ConfigurationError):
            driver.allocate_rows({})
        with pytest.raises(ConfigurationError):
            driver.allocate_rows({7: 1.0})

    def test_needs_bands(self):
        spec = make_spec([SignalProperty.FREQUENCY])
        with pytest.raises(ConfigurationError):
            FrequencySelectiveDriver(make_panel(spec), bands_hz=[])
