"""Driver base semantics: async updates, codebooks, capability checks."""

import math

import numpy as np
import pytest

from repro.core import (
    CapabilityError,
    ConfigurationError,
    DriverError,
    SurfaceConfiguration,
)
from repro.drivers import (
    FeedbackReport,
    PassivePhaseDriver,
    ProgrammablePhaseDriver,
)
from repro.geometry import vec3
from repro.surfaces import (
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    SurfacePanel,
)


def make_prog_panel():
    return SurfacePanel(
        "prog", GENERIC_PROGRAMMABLE_28, 4, 4, vec3(0, 0, 1.5), vec3(0, -1, 0)
    )


def make_passive_panel():
    return SurfacePanel(
        "pas", GENERIC_PASSIVE_28, 4, 4, vec3(0, 0, 1.5), vec3(0, -1, 0)
    )


@pytest.fixture()
def driver():
    return ProgrammablePhaseDriver(make_prog_panel())


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestAsyncUpdates:
    def test_write_not_live_before_control_delay(self, driver, rng):
        cfg = SurfaceConfiguration.random(4, 4, rng=rng)
        ready_at = driver.push_configuration("a", cfg, now=0.0).ready_at
        assert ready_at == pytest.approx(
            GENERIC_PROGRAMMABLE_28.control_delay_s
        )
        assert driver.pending_count() == 1
        driver.commit(now=ready_at / 2)
        assert driver.active_configuration_name is None
        assert driver.pending_count() == 1

    def test_write_live_after_control_delay(self, driver, rng):
        cfg = SurfaceConfiguration.random(4, 4, rng=rng)
        ready_at = driver.push_configuration("a", cfg, now=0.0).ready_at
        applied = driver.commit(now=ready_at).applied
        assert applied == 1
        assert driver.active_configuration_name == "a"
        assert driver.pending_count() == 0

    def test_store_without_activation(self, driver, rng):
        cfg = SurfaceConfiguration.random(4, 4, rng=rng)
        driver.push_configuration("standby", cfg, now=0.0, activate=False)
        driver.commit(now=1.0)
        assert driver.active_configuration_name is None
        assert "standby" in driver.stored_configurations()

    def test_multiple_writes_apply_in_order(self, driver, rng):
        a = SurfaceConfiguration.random(4, 4, rng=rng)
        b = SurfaceConfiguration.random(4, 4, rng=rng)
        driver.push_configuration("a", a, now=0.0)
        driver.push_configuration("b", b, now=0.001)
        driver.commit(now=1.0)
        assert driver.active_configuration_name == "b"

    def test_codebook_capacity_enforced(self, driver, rng):
        for i in range(GENERIC_PROGRAMMABLE_28.max_stored_configurations):
            driver.push_configuration(
                f"c{i}", SurfaceConfiguration.random(4, 4, rng=rng), now=0.0
            )
        driver.commit(now=1.0)
        with pytest.raises(DriverError):
            driver.push_configuration(
                "overflow", SurfaceConfiguration.random(4, 4, rng=rng), now=1.0
            )

    def test_rewriting_existing_entry_allowed_at_capacity(self, driver, rng):
        for i in range(GENERIC_PROGRAMMABLE_28.max_stored_configurations):
            driver.push_configuration(
                f"c{i}", SurfaceConfiguration.random(4, 4, rng=rng), now=0.0
            )
        driver.commit(now=1.0)
        # Overwriting an existing name does not raise.
        driver.push_configuration(
            "c0", SurfaceConfiguration.random(4, 4, rng=rng), now=1.0
        )


class TestDataPlane:
    def test_local_selection_is_instant(self, driver, rng):
        a = SurfaceConfiguration.random(4, 4, rng=rng)
        b = SurfaceConfiguration.random(4, 4, rng=rng)
        driver.push_configuration("a", a, now=0.0)
        driver.push_configuration("b", b, now=0.0, activate=False)
        driver.commit(now=1.0)
        driver.select_configuration("b")
        assert driver.active_configuration_name == "b"

    def test_select_unknown_raises(self, driver):
        with pytest.raises(DriverError):
            driver.select_configuration("ghost")

    def test_feedback_picks_best_entry(self, driver, rng):
        for name in ("a", "b", "c"):
            driver.push_configuration(
                name, SurfaceConfiguration.random(4, 4, rng=rng), now=0.0
            )
        driver.commit(now=1.0)
        chosen = driver.apply_feedback(
            FeedbackReport(
                client_id="phone",
                metric_by_configuration={"a": 11.0, "b": 25.0, "c": 18.0},
            )
        )
        assert chosen == "b"
        assert driver.active_configuration_name == "b"

    def test_feedback_ignores_unknown_entries(self, driver, rng):
        driver.push_configuration(
            "a", SurfaceConfiguration.random(4, 4, rng=rng), now=0.0
        )
        driver.commit(now=1.0)
        chosen = driver.apply_feedback(
            FeedbackReport(
                client_id="phone", metric_by_configuration={"ghost": 99.0}
            )
        )
        assert chosen is None

    def test_feedback_validates_before_activation(self, driver, rng):
        driver.push_configuration(
            "a", SurfaceConfiguration.random(4, 4, rng=rng), now=0.0
        )
        driver.commit(now=1.0)
        # A codebook entry injected around push() (or predating a spec
        # change) must not actuate silently if the panel can't express it.
        driver._codebook["rogue"] = SurfaceConfiguration.zeros(3, 3)
        with pytest.raises(ConfigurationError):
            driver.apply_feedback(
                FeedbackReport(
                    client_id="phone",
                    metric_by_configuration={"a": 1.0, "rogue": 99.0},
                )
            )
        assert driver.active_configuration_name == "a"


class TestPassive:
    def test_fabricate_once(self, rng):
        drv = PassivePhaseDriver(make_passive_panel())
        assert not drv.fabricated
        drv.fabricate(SurfaceConfiguration.random(4, 4, rng=rng))
        assert drv.fabricated
        with pytest.raises(CapabilityError):
            drv.fabricate(SurfaceConfiguration.random(4, 4, rng=rng))

    def test_push_rejected(self, rng):
        drv = PassivePhaseDriver(make_passive_panel())
        with pytest.raises(CapabilityError):
            drv.push_configuration(
                "x", SurfaceConfiguration.random(4, 4, rng=rng), now=0.0
            )

    def test_select_rejected(self, rng):
        drv = PassivePhaseDriver(make_passive_panel())
        drv.fabricate(SurfaceConfiguration.random(4, 4, rng=rng))
        with pytest.raises(CapabilityError):
            drv.select_configuration("fabricated")

    def test_feedback_ignored(self, rng):
        drv = PassivePhaseDriver(make_passive_panel())
        drv.fabricate(SurfaceConfiguration.random(4, 4, rng=rng))
        assert (
            drv.apply_feedback(
                FeedbackReport("c", {"fabricated": 10.0})
            )
            is None
        )

    def test_infinite_control_delay(self):
        assert math.isinf(GENERIC_PASSIVE_28.control_delay_s)


class TestValidation:
    def test_wrong_shape_rejected(self, driver):
        with pytest.raises(ConfigurationError):
            driver.push_configuration(
                "bad", SurfaceConfiguration.zeros(3, 3), now=0.0
            )

    def test_get_configuration_unknown(self, driver):
        with pytest.raises(DriverError):
            driver.get_configuration("ghost")
