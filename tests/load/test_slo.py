"""SLO policies: spec parsing, evaluation verdicts, reports."""

import pytest

from repro.core.errors import ServiceError
from repro.load import SLOPolicy
from repro.load.collectors import CollectorSet
from repro.pipeline import PriorityClass


def _collectors(served_latencies, rejected=0):
    collectors = CollectorSet()
    for pclass, latency in served_latencies:
        collectors.on_submitted(queue_depth=0)
        collectors.on_served(pclass, latency)
    for _ in range(rejected):
        collectors.on_submitted(queue_depth=0)
        collectors.on_rejected()
    return collectors


class TestParse:
    def test_full_spec(self):
        policy = SLOPolicy.parse(
            "interactive=0.2,normal=1.0,bulk=5.0,satisfaction=0.95,p99=2.0"
        )
        assert policy.class_p99_s[PriorityClass.INTERACTIVE] == 0.2
        assert policy.class_p99_s[PriorityClass.BULK] == 5.0
        assert policy.overall_p99_s == 2.0
        assert policy.satisfaction_floor == 0.95

    def test_subset_and_whitespace(self):
        policy = SLOPolicy.parse(" interactive=0.5 , satisfaction=0.9 ")
        assert policy.class_p99_s == {PriorityClass.INTERACTIVE: 0.5}
        assert policy.overall_p99_s is None

    def test_unknown_key(self):
        with pytest.raises(ServiceError, match="unknown SLO key"):
            SLOPolicy.parse("latency=1.0")

    def test_bad_value(self):
        with pytest.raises(ServiceError, match="bad SLO value"):
            SLOPolicy.parse("interactive=fast")

    def test_missing_equals(self):
        with pytest.raises(ServiceError, match="key=value"):
            SLOPolicy.parse("interactive")

    def test_bounds_validated(self):
        with pytest.raises(ServiceError, match="must be positive"):
            SLOPolicy.parse("interactive=-1")
        with pytest.raises(ServiceError, match="satisfaction_floor"):
            SLOPolicy.parse("satisfaction=1.5")


class TestEvaluate:
    def test_all_met(self):
        collectors = _collectors(
            [(PriorityClass.INTERACTIVE, 0.05)] * 20
        )
        report = SLOPolicy.parse(
            "interactive=0.2,satisfaction=0.95"
        ).evaluate(collectors)
        assert report.ok
        assert report.render() == "SLO: all objectives met"

    def test_class_bound_violated(self):
        collectors = _collectors([(PriorityClass.INTERACTIVE, 0.5)] * 20)
        report = SLOPolicy.parse("interactive=0.2").evaluate(collectors)
        assert not report.ok
        assert "interactive p99" in report.violations[0]
        assert "VIOLATED" in report.render()

    def test_satisfaction_floor_violated(self):
        collectors = _collectors(
            [(PriorityClass.NORMAL, 0.05)] * 8, rejected=2
        )
        report = SLOPolicy.parse("satisfaction=0.95").evaluate(collectors)
        assert not report.ok
        assert "satisfaction" in report.violations[0]

    def test_overall_p99_violated(self):
        collectors = _collectors([(PriorityClass.BULK, 3.0)] * 10)
        report = SLOPolicy.parse("p99=2.0").evaluate(collectors)
        assert not report.ok
        assert "overall p99" in report.violations[0]

    def test_empty_class_not_judged(self):
        # A bound on a class with no traffic cannot be violated.
        collectors = _collectors([(PriorityClass.NORMAL, 0.05)] * 5)
        report = SLOPolicy.parse("interactive=0.001").evaluate(collectors)
        assert report.ok

    def test_describe_keys(self):
        policy = SLOPolicy.parse("interactive=0.2,p99=2.0,satisfaction=0.9")
        described = policy.describe()
        assert described["p99_s.interactive"] == 0.2
        assert described["p99_s"] == 2.0
        assert described["satisfaction_floor"] == 0.9
