"""Offered-load sweeps: knee detection, determinism, CLI plumbing."""

import json

import pytest

from repro.cli import main
from repro.core.errors import ServiceError
from repro.load import LoadConfig, run_sweep
from repro.load.sweep import DEFAULT_SWEEP_RATES


RATES = (5.0, 20.0, 80.0)


def small_sweep(**kwargs):
    kwargs.setdefault("rates", RATES)
    kwargs.setdefault("requests_per_rate", 400)
    return run_sweep(**kwargs)


class TestValidation:
    def test_empty_ladder_rejected(self):
        with pytest.raises(ServiceError):
            run_sweep(rates=())

    def test_descending_ladder_rejected(self):
        with pytest.raises(ServiceError):
            run_sweep(rates=(20.0, 5.0))

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ServiceError):
            run_sweep(rates=(0.0, 5.0))

    def test_knee_factor_must_exceed_one(self):
        with pytest.raises(ServiceError):
            run_sweep(rates=RATES, knee_factor=1.0)


class TestSweep:
    def test_finds_the_saturation_knee(self):
        result = small_sweep()
        # The default cost model saturates inside this ladder: p99 at
        # the top rate is far beyond 2x the 5 req/s baseline.
        assert result.knee_rate_hz in RATES[1:]
        assert result.points[-1].p99_s > 2.0 * result.baseline_p99_s

    def test_no_knee_when_ladder_stays_low(self):
        result = run_sweep(
            rates=(1.0, 1.5), requests_per_rate=200, knee_factor=10.0
        )
        assert result.knee_rate_hz is None
        assert "no saturation knee" in result.render()

    def test_never_gated(self):
        assert small_sweep().gate_failures() == []
        assert small_sweep().gate() == 0

    def test_deterministic_across_repeats(self):
        assert small_sweep(seed=3).summary() == small_sweep(seed=3).summary()

    def test_summary_carries_every_point(self):
        result = small_sweep()
        points = result.summary()["sweep.points"]
        assert [p["rate_hz"] for p in points] == list(RATES)
        assert all("p99_s" in p for p in points)
        assert result.summary()["sweep.knee_rate_hz"] == result.knee_rate_hz

    def test_render_marks_the_knee(self):
        result = small_sweep()
        assert "<- knee" in result.render()
        assert "saturation knee at" in result.render()

    def test_respects_load_config(self):
        adaptive = small_sweep()
        fixed = small_sweep(
            config=LoadConfig(coalesce_window_s=0.5, adaptive=None)
        )
        # A long fixed window floors every latency at half a second.
        assert fixed.points[0].p50_s > adaptive.points[0].p50_s

    def test_default_ladder_is_ascending(self):
        assert list(DEFAULT_SWEEP_RATES) == sorted(DEFAULT_SWEEP_RATES)


class TestCLI:
    def test_sweep_writes_json_summary(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                "load",
                "--sweep",
                "--sweep-rates",
                "5,20,80",
                "--requests",
                "400",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        summary = json.loads(out.read_text())
        assert [p["rate_hz"] for p in summary["sweep.points"]] == [
            5.0,
            20.0,
            80.0,
        ]
        assert "Offered-load sweep" in capsys.readouterr().out

    def test_bad_sweep_rates_exit_2(self, capsys):
        code = main(["load", "--sweep", "--sweep-rates", "80,5"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
