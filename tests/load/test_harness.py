"""Load harness: determinism, SLO gating, protocol conformance."""

import json

import pytest

from repro.core.errors import ServiceError
from repro.experiments.result import ExperimentResult
from repro.load import (
    BurstArrivals,
    FlashCrowdArrivals,
    LoadConfig,
    LoadHarness,
    PoissonArrivals,
    SLOPolicy,
)


def _run(model=None, config=None, slo=None, jsonl=None):
    model = model or PoissonArrivals(2000, rate_hz=20.0, seed=0)
    return LoadHarness(config or LoadConfig()).run(
        model, slo=slo, jsonl=jsonl
    )


class TestDeterminism:
    def test_same_seed_identical_summaries(self):
        a = _run().summary()
        b = _run().summary()
        assert a == b

    def test_same_seed_byte_identical_jsonl(self, tmp_path):
        path_a = str(tmp_path / "a.jsonl")
        path_b = str(tmp_path / "b.jsonl")
        _run(jsonl=path_a)
        _run(jsonl=path_b)
        assert open(path_a, "rb").read() == open(path_b, "rb").read()

    def test_different_seed_differs(self):
        a = _run(PoissonArrivals(2000, rate_hz=20.0, seed=0)).summary()
        b = _run(PoissonArrivals(2000, rate_hz=20.0, seed=1)).summary()
        assert a != b

    def test_wall_time_never_serialized(self):
        result = _run()
        assert result.wall_s > 0
        assert "wall_s" not in json.loads(result.to_json())


class TestBehavior:
    def test_all_served_at_moderate_rate(self):
        result = _run()
        sat = result.collectors.satisfaction
        assert sat.submitted == 2000
        assert sat.total_served == 2000
        assert sat.rejected == 0
        assert result.throughput_rps > 0

    def test_coalescing_merges_burst(self):
        result = _run(BurstArrivals(32))
        reopt = result.collectors.reoptimization
        # One batch admission per max_batch chunk, but far fewer
        # solves than requests.
        assert reopt.reoptimizations < 32
        assert reopt.coalesce_ratio >= 1.0

    def test_flash_crowd_degrades_not_collapses(self):
        model = FlashCrowdArrivals(
            3000, rate_hz=20.0, seed=0, multiplier=10.0
        )
        result = _run(model)
        assert result.collectors.satisfaction.rate > 0.5

    def test_fixed_window_config(self):
        config = LoadConfig(adaptive=None, coalesce_window_s=0.2)
        result = _run(config=config)
        assert result.config["coalescing"] == "fixed"
        reopt = result.collectors.reoptimization
        assert reopt.window_max_s == pytest.approx(0.2)

    def test_tiny_queue_rejects(self):
        config = LoadConfig(queue_capacity=1, max_batch=1)
        result = _run(BurstArrivals(50), config=config)
        assert result.collectors.satisfaction.rejected > 0


class TestGating:
    def test_slo_pass_and_fail(self):
        passing = _run(slo=SLOPolicy.parse("satisfaction=0.5"))
        assert passing.gate() == 0
        assert passing.gate_failures() == []
        failing = _run(slo=SLOPolicy.parse("interactive=0.0001"))
        assert failing.gate() == 1
        assert failing.gate_failures()
        assert failing.summary()["slo.ok"] is False

    def test_no_slo_means_no_gate(self):
        assert _run().gate() == 0

    def test_protocol_conformance(self):
        result = _run(slo=SLOPolicy.parse("satisfaction=0.5"))
        assert isinstance(result, ExperimentResult)
        assert "Load run" in result.render()
        assert json.loads(result.to_json())["submitted"] == 2000


class TestValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ServiceError):
            LoadConfig(queue_capacity=0)
        with pytest.raises(ServiceError):
            LoadConfig(max_batch=0)
        with pytest.raises(ServiceError):
            LoadConfig(coalesce_window_s=-0.1)
        with pytest.raises(ServiceError):
            LoadConfig(base_solve_cost_s=-1.0)
        with pytest.raises(ServiceError):
            LoadConfig(class_mix=(1.0, 1.0))
        with pytest.raises(ServiceError):
            LoadConfig(class_mix=(0.0, 0.0, 0.0))

    def test_class_mix_respected(self):
        config = LoadConfig(class_mix=(1.0, 0.0, 0.0))
        result = _run(config=config)
        served = result.collectors.satisfaction.served
        total = result.collectors.satisfaction.total_served
        assert served[list(served)[0]] == total  # all interactive
