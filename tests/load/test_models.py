"""Arrival models: determinism, shape, trace round-trip, factory."""

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.load import (
    MODEL_NAMES,
    BurstArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    TraceReplay,
    build_model,
    read_trace,
    write_trace,
)

REQUESTS = 500


def _models(requests=REQUESTS, seed=3):
    return [
        PoissonArrivals(requests, rate_hz=5.0, seed=seed),
        DiurnalArrivals(requests, rate_hz=5.0, seed=seed),
        FlashCrowdArrivals(requests, rate_hz=5.0, seed=seed),
        BurstArrivals(requests, seed=seed),
    ]


class TestDeterminism:
    def test_same_seed_identical_streams(self):
        for a, b in zip(_models(seed=7), _models(seed=7)):
            assert list(a.times()) == list(b.times()), a.name

    def test_times_restarts_from_seed(self):
        # Two calls on the SAME instance yield the identical sequence.
        for model in _models():
            assert list(model.times()) == list(model.times()), model.name

    def test_different_seeds_differ(self):
        for a, b in zip(_models(seed=1), _models(seed=2)):
            if isinstance(a, BurstArrivals):
                continue  # burst is seed-independent by construction
            assert list(a.times()) != list(b.times()), a.name

    def test_prefix_stability(self):
        # A longer run shares its prefix with a shorter one — chunked
        # draws must not depend on the total request count.
        short = PoissonArrivals(100, rate_hz=5.0, seed=3)
        long = PoissonArrivals(REQUESTS, rate_hz=5.0, seed=3)
        assert list(long.times())[:100] == list(short.times())


class TestShape:
    def test_counts_and_monotonicity(self):
        for model in _models():
            times = list(model.times())
            assert len(times) == REQUESTS, model.name
            assert all(
                b >= a for a, b in zip(times, times[1:])
            ), model.name

    def test_poisson_starts_at_zero(self):
        assert next(iter(PoissonArrivals(10, rate_hz=2.0).times())) == 0.0

    def test_burst_all_at_zero(self):
        assert list(BurstArrivals(5).times()) == [0.0] * 5

    def test_poisson_mean_rate(self):
        times = list(PoissonArrivals(5000, rate_hz=10.0, seed=0).times())
        rate = (len(times) - 1) / times[-1]
        assert rate == pytest.approx(10.0, rel=0.1)

    def test_flash_crowd_densifies_spike(self):
        model = FlashCrowdArrivals(
            4000,
            rate_hz=5.0,
            seed=0,
            flash_at_s=10.0,
            flash_duration_s=5.0,
            multiplier=10.0,
        )
        times = np.array(list(model.times()))
        in_spike = ((times >= 10.0) & (times < 15.0)).sum() / 5.0
        before = (times < 10.0).sum() / 10.0
        assert in_spike > 3 * before

    def test_diurnal_rate_varies_with_phase(self):
        model = DiurnalArrivals(
            6000, rate_hz=10.0, seed=0, period_s=100.0, depth=0.9
        )
        times = np.array(list(model.times()))
        phase = (times % 100.0) / 100.0
        peak = ((phase >= 0.1) & (phase < 0.4)).sum()
        trough = ((phase >= 0.6) & (phase < 0.9)).sum()
        assert peak > 2 * trough


class TestTrace:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        original = list(
            PoissonArrivals(200, rate_hz=8.0, seed=11).times()
        )
        assert write_trace(path, original) == 200
        replayed = read_trace(path)
        np.testing.assert_allclose(replayed, original, atol=1e-9)
        # A second write of the replay is byte-identical (stable
        # nanosecond rounding).
        path2 = str(tmp_path / "trace2.jsonl")
        write_trace(path2, replayed)
        assert open(path).read() == open(path2).read()

    def test_replay_respects_requests_cap(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, [0.0, 1.0, 2.0, 3.0])
        assert list(TraceReplay(path, requests=2).times()) == [0.0, 1.0]

    def test_rejects_decreasing_times(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        path_obj = tmp_path / "bad.jsonl"
        path_obj.write_text('{"t": 1.0}\n{"t": 0.5}\n')
        with pytest.raises(ServiceError, match="non-decreasing"):
            TraceReplay(path)

    def test_rejects_malformed_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ServiceError):
            TraceReplay(str(bad))

    def test_missing_file(self):
        with pytest.raises(ServiceError, match="not found"):
            TraceReplay("/nonexistent/trace.jsonl")


class TestFactory:
    def test_builds_every_named_model(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        write_trace(trace, [0.0, 0.5])
        for name in MODEL_NAMES:
            model = build_model(
                name, requests=2, rate_hz=4.0, seed=0, trace=trace
            )
            assert model.name == name
            assert len(list(model.times())) == 2

    def test_drops_none_and_irrelevant_knobs(self):
        # CLI callers forward every flag; irrelevant ones must not
        # reach the wrong constructor.
        model = build_model(
            "diurnal",
            requests=4,
            rate_hz=2.0,
            seed=0,
            period_s=60.0,
            depth=None,
            flash_at_s=5.0,
            multiplier=3.0,
        )
        assert model.period_s == 60.0

    def test_unknown_model(self):
        with pytest.raises(ServiceError, match="unknown arrival model"):
            build_model("zipf", requests=10)

    def test_trace_requires_file(self):
        with pytest.raises(ServiceError, match="needs a trace file"):
            build_model("trace", requests=10)


class TestValidation:
    def test_rejects_nonpositive_requests(self):
        with pytest.raises(ServiceError):
            PoissonArrivals(0, rate_hz=1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ServiceError):
            PoissonArrivals(10, rate_hz=0.0)

    def test_rejects_bad_depth(self):
        with pytest.raises(ServiceError):
            DiurnalArrivals(10, rate_hz=1.0, depth=1.5)

    def test_rejects_sub_unit_multiplier(self):
        with pytest.raises(ServiceError):
            FlashCrowdArrivals(10, rate_hz=1.0, multiplier=0.5)
