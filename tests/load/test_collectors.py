"""Collectors: streaming percentiles vs numpy, counts, summaries."""

import numpy as np
import pytest

from repro.load.collectors import (
    LATENCY_BUCKET_S,
    CollectorSet,
    LatencyCollector,
    QueueDepthCollector,
    ReoptimizationCollector,
    SatisfactionCollector,
)
from repro.pipeline import PriorityClass
from repro.telemetry import Telemetry
from repro.telemetry.histogram import StreamingHistogram


class TestHistogramAccuracy:
    @pytest.mark.parametrize("q", [50.0, 99.0, 99.9])
    def test_percentiles_within_one_bucket_of_numpy(self, q):
        # The acceptance bar: at 1e5 samples every reported percentile
        # sits within one bucket width of the exact order statistic
        # (inverted-CDF — the rank convention the sketch implements).
        rng = np.random.default_rng(0)
        samples = rng.gamma(shape=2.0, scale=0.05, size=100_000)
        hist = StreamingHistogram(LATENCY_BUCKET_S, 8192)
        for value in samples:
            hist.observe(float(value))
        exact = float(np.percentile(samples, q, method="inverted_cdf"))
        delta = hist.percentile(q) - exact
        # The sketch reports bucket upper edges: an upper bound, off by
        # at most one bucket.
        assert 0.0 <= delta <= LATENCY_BUCKET_S

    def test_overflow_clamps_to_edge(self):
        hist = StreamingHistogram(0.001, 10)
        hist.observe(5.0)
        assert hist.percentile(99.0) == pytest.approx(0.01)
        assert hist.overflow == 1


class TestLatencyCollector:
    def test_per_class_isolation(self):
        collector = LatencyCollector()
        collector.observe(PriorityClass.INTERACTIVE, 0.010)
        collector.observe(PriorityClass.BULK, 1.0)
        assert collector.p99(PriorityClass.INTERACTIVE) < 0.02
        assert collector.p99(PriorityClass.BULK) > 0.9
        assert collector.overall.count == 2

    def test_summary_prefixes(self):
        collector = LatencyCollector()
        collector.observe(PriorityClass.NORMAL, 0.05)
        summary = collector.summary()
        assert "latency_s.count" in summary
        assert "latency_s.normal.count" in summary
        # Classes with no traffic stay out of the summary.
        assert "latency_s.bulk.count" not in summary


class TestSatisfaction:
    def test_rate_counts_only_served(self):
        sat = SatisfactionCollector()
        for _ in range(10):
            sat.observe_submitted()
        for _ in range(7):
            sat.observe_served(PriorityClass.NORMAL)
        sat.observe_rejected()
        assert sat.rate == pytest.approx(0.7)
        assert sat.summary()["rejected"] == 1
        assert sat.summary()["served.normal"] == 7

    def test_empty_rate_is_zero(self):
        assert SatisfactionCollector().rate == 0.0


class TestQueueDepth:
    def test_depth_summary(self):
        collector = QueueDepthCollector()
        for depth in [0, 1, 2, 50]:
            collector.observe(depth)
        summary = collector.summary()
        assert summary["queue_depth.count"] == 4
        assert summary["queue_depth.max"] == 50


class TestReoptimization:
    def test_coalesce_ratio(self):
        collector = ReoptimizationCollector()
        for _ in range(6):
            collector.observe_trigger()
        collector.observe_solve(coalesced=4, cost_s=0.1, window_s=0.2)
        collector.observe_solve(coalesced=2, cost_s=0.1, window_s=0.0)
        assert collector.reoptimizations == 2
        assert collector.triggers == 6
        assert collector.coalesce_ratio == pytest.approx(3.0)
        summary = collector.summary()
        assert summary["max_window_s"] == pytest.approx(0.2)
        assert summary["mean_window_s"] == pytest.approx(0.1)

    def test_no_solves_ratio_is_zero(self):
        assert ReoptimizationCollector().coalesce_ratio == 0.0


class TestCollectorSet:
    def test_fanout_and_telemetry_mirror(self):
        telemetry = Telemetry()
        collectors = CollectorSet(telemetry)
        collectors.on_submitted(queue_depth=1)
        collectors.on_trigger()
        collectors.on_solve(coalesced=1, cost_s=0.05, window_s=0.0)
        collectors.on_served(PriorityClass.INTERACTIVE, 0.06)
        collectors.on_submitted(queue_depth=2)
        collectors.on_rejected()
        assert telemetry.get_counter("load.submitted") == 2
        assert telemetry.get_counter("load.rejected") == 1
        assert telemetry.get_counter("load.triggers") == 1
        assert telemetry.get_counter("load.reoptimizations") == 1
        summary = collectors.summary()
        assert summary["submitted"] == 2
        assert summary["served"] == 1
        assert summary["satisfaction"] == pytest.approx(0.5)
        assert "latency_s.p99" in summary
        assert summary["coalesce_ratio"] == pytest.approx(1.0)

    def test_unbound_telemetry_is_silent(self):
        collectors = CollectorSet()
        collectors.on_submitted(queue_depth=0)
        collectors.on_served(PriorityClass.NORMAL, 0.01)
        assert collectors.satisfaction.rate == 1.0
