"""ServiceFrontend conformance: broker, fleet, and tenant frontends."""

from repro.broker import ApplicationDemand, HandleStatus, ServiceFrontend
from repro.orchestrator import Hypervisor, TenantPolicy


class TestFrontendProtocol:
    def test_fleet_broker_conforms(self, fleet):
        assert isinstance(fleet, ServiceFrontend)

    def test_single_broker_conforms(self, fleet):
        shard = fleet.shards["z1"]
        assert isinstance(shard.broker, ServiceFrontend)

    def test_tenant_frontend_conforms(self, fleet):
        hypervisor = Hypervisor(fleet.shards["z1"].orchestrator)
        frontend = hypervisor.create_frontend(
            TenantPolicy(name="acme", time_budget=0.5)
        )
        assert isinstance(frontend, ServiceFrontend)

    def test_tenant_frontend_serves_and_enforces_policy(self, fleet):
        shard = fleet.shards["z1"]
        shard.ensure_client("z1:tv")
        hypervisor = Hypervisor(shard.orchestrator)
        frontend = hypervisor.create_frontend(
            TenantPolicy(name="acme", max_priority=4, time_budget=0.5)
        )
        handle = frontend.register_application(
            ApplicationDemand(
                app_name="video_streaming",
                client_id="z1:tv",
                room_id="bedroom",
                throughput_mbps=10.0,
                priority=9,
            )
        )
        assert handle.status is HandleStatus.ADMITTED
        tasks = [
            shard.orchestrator.scheduler.task(tid)
            for tid in handle.task_ids
        ]
        # The tenant's priority ceiling clamps the request's 9 to 4.
        assert all(t.priority <= 4 for t in tasks)
        assert all(
            hypervisor.owner_of(t.task_id) == "acme" for t in tasks
        )
