"""FleetBroker: routing, spill, saturation backpressure, handoff."""

import pytest

from repro.broker import (
    ApplicationDemand,
    HandleStatus,
    RequestStatus,
    ServiceResponse,
)
from repro.core.errors import ServiceError
from repro.fleet import LeastLoaded, RoutingDecision

from .conftest import make_fleet


def demand(i=0, zone="z1", app="video_streaming", priority=6):
    return ApplicationDemand(
        app_name=app,
        client_id=f"{zone}:cl-{i}",
        room_id="bedroom",
        throughput_mbps=10.0,
        priority=priority,
    )


class TestRouting:
    def test_zone_request_lands_on_zone_shard(self, fleet):
        handle = fleet.register_application(demand(zone="z2"))
        assert handle.status is HandleStatus.ADMITTED
        assert handle.routing.shard_id == "z2"
        assert not handle.routing.fallback_used
        assert fleet.shard_of("video_streaming", "z2:cl-0").shard_id == "z2"

    def test_response_carries_routing_decision(self, fleet):
        handle = fleet.submit(demand(zone="z3"))
        assert isinstance(handle.routing, RoutingDecision)
        assert handle.routing.shard_id == "z3"
        assert handle.routing.strategy == "static-zone"
        assert handle.routing.candidates[0] == "z3"

    def test_routing_is_deterministic_per_seed(self):
        placements = []
        for _ in range(2):
            fleet = make_fleet(strategy=LeastLoaded())
            try:
                handles = [
                    fleet.submit(demand(i, zone=f"z{1 + i % 3}"))
                    for i in range(6)
                ]
                placements.append(
                    [h.routing.shard_id for h in handles]
                )
            finally:
                fleet.close()
        assert placements[0] == placements[1]

    def test_fleet_duplicate_rejected_across_shards(self, fleet):
        fleet.register_application(demand())
        with pytest.raises(ServiceError, match="already served by fleet"):
            fleet.register_application(demand())

    def test_rejection_counts_in_telemetry(self, fleet):
        fleet.register_application(demand())
        response = fleet.serve(
            __import__(
                "repro.broker.calls", fromlist=["ServiceRequest"]
            ).ServiceRequest(demand=demand())
        )
        assert response.status is RequestStatus.REJECTED
        assert fleet.telemetry.get_counter("fleet.rejected") == 1


class TestSpillOnQuarantine:
    def test_quarantined_home_shard_spills_to_fallback(self, fleet):
        fleet.quarantine_shard("z1")
        handle = fleet.register_application(demand(zone="z1"))
        assert handle.status is HandleStatus.ADMITTED
        assert handle.routing.shard_id != "z1"
        assert handle.routing.fallback_used
        assert fleet.telemetry.get_counter("fleet.spilled") == 1

    def test_interactive_request_survives_quarantine(self, fleet):
        fleet.quarantine_shard("z2")
        interactive = ApplicationDemand(
            app_name="cloud_gaming",
            client_id="z2:headset",
            room_id="bedroom",
            throughput_mbps=30.0,
            latency_ms=10.0,
            priority=8,
        )
        handle = fleet.submit(interactive)
        assert handle.status is HandleStatus.QUEUED
        fleet.run(6, dt=0.1)
        assert handle.status is HandleStatus.RUNNING

    def test_all_quarantined_rejects_with_reason(self, fleet):
        for sid in ("z1", "z2", "z3"):
            fleet.quarantine_shard(sid)
        handle = fleet.submit(demand())
        assert handle.status is HandleStatus.REJECTED
        assert "quarantined" in handle.reason
        with pytest.raises(ServiceError, match="quarantined"):
            fleet.register_application(demand(1))

    def test_reinstate_restores_placement(self, fleet):
        fleet.quarantine_shard("z1")
        fleet.reinstate_shard("z1")
        handle = fleet.register_application(demand(zone="z1"))
        assert handle.routing.shard_id == "z1"
        assert not handle.routing.fallback_used


class TestSaturationBackpressure:
    def test_saturated_queue_rejects_with_reason_not_raise(self):
        fleet = make_fleet(queue_capacity=1)
        try:
            first = fleet.submit(demand(0))
            assert first.status is HandleStatus.QUEUED
            second = fleet.submit(demand(1))
            assert second.status is HandleStatus.REJECTED
            assert "queue full" in second.reason
            assert second.routing.shard_id == "z1"
        finally:
            fleet.close()

    def test_submit_request_returns_rejected_response(self):
        from repro.broker.calls import ServiceRequest

        fleet = make_fleet(queue_capacity=1)
        try:
            fleet.submit(demand(0))
            response = fleet.submit_request(
                ServiceRequest(demand=demand(1))
            )
            assert isinstance(response, ServiceResponse)
            assert response.status is RequestStatus.REJECTED
            assert "queue full" in response.reason
            assert response.routing is not None
        finally:
            fleet.close()


class TestHandoff:
    def test_handoff_moves_application(self, fleet):
        handle = fleet.submit(demand(zone="z1"))
        fleet.run(6, dt=0.1)
        assert handle.status is HandleStatus.RUNNING
        moved = fleet.handoff("video_streaming", "z1:cl-0", "z3")
        assert moved.routing.shard_id == "z3"
        assert moved.routing.strategy == "handoff"
        assert fleet.shard_of("video_streaming", "z1:cl-0").shard_id == "z3"
        assert handle.status is HandleStatus.STOPPED
        assert fleet.telemetry.get_counter("fleet.rebalanced") == 1
        fleet.run(4, dt=0.1)
        assert moved.status is HandleStatus.RUNNING

    def test_handoff_to_quarantined_shard_raises(self, fleet):
        fleet.register_application(demand(zone="z1"))
        fleet.quarantine_shard("z3")
        with pytest.raises(ServiceError, match="quarantined"):
            fleet.handoff("video_streaming", "z1:cl-0", "z3")

    def test_handoff_same_shard_is_noop(self, fleet):
        handle = fleet.register_application(demand(zone="z1"))
        again = fleet.handoff("video_streaming", "z1:cl-0", "z1")
        assert again is handle
        assert fleet.telemetry.get_counter("fleet.rebalanced") == 0
