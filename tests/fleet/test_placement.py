"""Placement strategies: zone wiring, least-loaded, congestion costs."""

from repro.broker import ApplicationDemand
from repro.broker.calls import ServiceRequest
from repro.fleet import (
    CongestionAware,
    LeastLoaded,
    RoutingDecision,
    ShardLoad,
    StaticZoneMap,
    zone_of,
)


def request(client_id="z1:phone"):
    return ServiceRequest(
        demand=ApplicationDemand(
            app_name="video_streaming",
            client_id=client_id,
            room_id="bedroom",
            throughput_mbps=10.0,
        )
    )


def load(sid, depth=0, cap=8, tasks=0, frac=1.0, quarantined=False):
    return ShardLoad(
        shard_id=sid,
        queue_depth=depth,
        queue_capacity=cap,
        active_tasks=tasks,
        operational_fraction=frac,
        quarantined=quarantined,
    )


class TestZoneOf:
    def test_tagged_and_untagged(self):
        assert zone_of("z2:phone") == "z2"
        assert zone_of("phone") == ""


class TestStaticZoneMap:
    def test_maps_zone_to_shard_first(self):
        strategy = StaticZoneMap({"z1": "z1", "z2": "z2"})
        loads = {"z1": load("z1"), "z2": load("z2")}
        ranked = strategy.rank(request("z2:phone"), loads)
        assert ranked[0] == ("z2", 0.0)
        assert [sid for sid, _ in ranked] == ["z2", "z1"]

    def test_unknown_zone_falls_through_in_order(self):
        strategy = StaticZoneMap({"z1": "z1"})
        loads = {"z1": load("z1"), "z2": load("z2")}
        ranked = strategy.rank(request("z9:phone"), loads)
        assert [sid for sid, _ in ranked] == ["z1", "z2"]


class TestLeastLoaded:
    def test_sorts_by_depth_plus_tasks(self):
        strategy = LeastLoaded()
        loads = {
            "a": load("a", depth=3, tasks=2),
            "b": load("b", depth=1, tasks=0),
            "c": load("c", depth=0, tasks=2),
        }
        assert [sid for sid, _ in strategy.rank(request(), loads)] == [
            "b",
            "c",
            "a",
        ]

    def test_tie_breaks_on_shard_id(self):
        strategy = LeastLoaded()
        loads = {"b": load("b"), "a": load("a")}
        assert [sid for sid, _ in strategy.rank(request(), loads)] == [
            "a",
            "b",
        ]


class TestCongestionAware:
    def test_prefers_idle_healthy_shard(self):
        strategy = CongestionAware()
        loads = {
            "busy": load("busy", depth=6, tasks=4),
            "idle": load("idle"),
        }
        ranked = strategy.rank(request(), loads)
        assert ranked[0][0] == "idle"
        assert ranked[0][1] < ranked[1][1]

    def test_health_penalty_beats_small_queue_edge(self):
        strategy = CongestionAware()
        loads = {
            # Slightly busier but fully healthy...
            "healthy": load("healthy", depth=1, tasks=0),
            # ...wins over an idle shard that lost half its panels.
            "degraded": load("degraded", frac=0.5),
        }
        assert strategy.rank(request(), loads)[0][0] == "healthy"

    def test_quarantined_costs_infinity(self):
        strategy = CongestionAware()
        loads = {
            "q": load("q", quarantined=True),
            "ok": load("ok", depth=7, tasks=9),
        }
        ranked = strategy.rank(request(), loads)
        assert ranked[0][0] == "ok"
        assert ranked[1][1] == float("inf")

    def test_rank_is_deterministic(self):
        strategy = CongestionAware()
        loads = {
            "a": load("a", depth=2),
            "b": load("b", depth=2),
            "c": load("c", depth=1),
        }
        first = strategy.rank(request(), loads)
        assert all(
            strategy.rank(request(), loads) == first for _ in range(5)
        )


class TestRoutingDecision:
    def test_as_dict_is_json_friendly(self):
        decision = RoutingDecision(
            shard_id="z1",
            strategy="congestion-aware",
            cost=0.25,
            fallback_used=True,
            candidates=("z1", "z2"),
        )
        flat = decision.as_dict()
        assert flat["shard_id"] == "z1"
        assert flat["fallback_used"] is True
        assert flat["candidates"] == ["z1", "z2"]
