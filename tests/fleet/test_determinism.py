"""Determinism: byte-identical sim-only JSONL across repeats and workers."""

import filecmp
import json

from repro.experiments import fleet as fleet_experiment


def run_to(path, parallelism=1, seed=3):
    result = fleet_experiment.run(
        shards=3,
        requests=9,
        seed=seed,
        panel_size=4,
        parallelism=parallelism,
        jsonl=str(path),
    )
    return result


class TestJsonlDeterminism:
    def test_repeat_run_is_byte_identical(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        first = run_to(a)
        second = run_to(b)
        assert first.placements == second.placements
        assert filecmp.cmp(a, b, shallow=False)
        assert a.stat().st_size > 0

    def test_worker_count_does_not_change_bytes(self, tmp_path):
        a = tmp_path / "w1.jsonl"
        b = tmp_path / "w2.jsonl"
        run_to(a, parallelism=1)
        run_to(b, parallelism=2)
        assert filecmp.cmp(a, b, shallow=False)

    def test_jsonl_is_sim_only_and_parseable(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_to(path)
        with open(path) as fh:
            events = [json.loads(line) for line in fh]
        assert events
        assert all("wall_time" not in e for e in events)

    def test_different_seeds_diverge(self, tmp_path):
        a = tmp_path / "s3.jsonl"
        b = tmp_path / "s4.jsonl"
        first = run_to(a, seed=3)
        second = run_to(b, seed=4)
        # Different seeds shuffle zones and arrival times, so either the
        # placements or the event stream must differ.
        assert (
            first.placements != second.placements
            or not filecmp.cmp(a, b, shallow=False)
        )


class TestExperimentResult:
    def test_summary_counts_are_consistent(self):
        result = fleet_experiment.run(
            shards=3, requests=9, seed=3, panel_size=4
        )
        summary = result.summary()
        assert summary["requests"] == 9
        assert len(result.statuses) == 9
        assert 0 < summary["served"] <= 9
        assert summary["slo_met"] == result.slo_met
        assert summary["quarantined_shard"] == "z3"

    def test_render_is_printable(self):
        result = fleet_experiment.run(
            shards=3, requests=6, seed=1, panel_size=4
        )
        text = result.render()
        assert "fleet" in text.lower()
        assert "rebalanced" in text
        assert "interactive SLO" in text
