"""Shared fixtures for the fleet tier tests."""

import pytest

from repro.broker.calls import reset_request_counter
from repro.fleet import FleetBroker, ShardSpec, StaticZoneMap
from repro.orchestrator.tasks import reset_task_counter


def make_specs(n=3, seed=0, panel_size=4, queue_capacity=8):
    return [
        ShardSpec(
            shard_id=f"z{i}",
            zone=f"z{i}",
            seed=seed + i,
            panel_size=panel_size,
            queue_capacity=queue_capacity,
        )
        for i in range(1, n + 1)
    ]


def make_fleet(n=3, strategy=None, **spec_kw):
    reset_task_counter()
    reset_request_counter()
    if strategy is None:
        strategy = StaticZoneMap(
            {f"z{i}": f"z{i}" for i in range(1, n + 1)}
        )
    return FleetBroker(make_specs(n, **spec_kw), strategy=strategy)


@pytest.fixture()
def fleet():
    broker = make_fleet()
    yield broker
    broker.close()
