"""Handle parity: fleet handles obey the single-broker lifecycle contract.

Mirrors the lifecycle assertions of ``tests/pipeline/test_handles.py``
against a :class:`~repro.fleet.FleetBroker`, so the fleet cannot drift
from the single-broker handle semantics.
"""

import pytest

from repro.broker import (
    ApplicationDemand,
    HandleStatus,
    RequestStatus,
    ServiceResponse,
)
from repro.core.errors import ServiceError


def demand(i=0, zone="z1", priority=5):
    return ApplicationDemand(
        app_name=f"app-{i}",
        client_id=f"{zone}:cl-{i}",
        room_id="bedroom",
        throughput_mbps=10.0,
        priority=priority,
    )


class TestDirectRegistration:
    def test_register_returns_admitted_handle(self, fleet):
        handle = fleet.register_application(demand())
        assert handle.status is HandleStatus.ADMITTED
        assert handle.task_ids
        report = fleet.satisfaction(handle)
        assert report["app"] == "app-0"

    def test_duplicate_registration_raises(self, fleet):
        fleet.register_application(demand())
        with pytest.raises(ServiceError):
            fleet.register_application(demand())

    def test_stop_returns_typed_response(self, fleet):
        handle = fleet.register_application(demand())
        response = fleet.stop_application("app-0", "z1:cl-0")
        assert isinstance(response, ServiceResponse)
        assert response.status is RequestStatus.STOPPED
        assert handle.status is HandleStatus.STOPPED

    def test_stop_unknown_app_raises(self, fleet):
        with pytest.raises(ServiceError):
            fleet.stop_application("ghost", "z1:cl-0")

    def test_applications_lists_handles(self, fleet):
        fleet.register_application(demand(0, zone="z1"))
        fleet.register_application(demand(1, zone="z2"))
        apps = fleet.applications()
        assert {h.key for h in apps} == {
            "app-0@z1:cl-0",
            "app-1@z2:cl-1",
        }
        assert all(h.status is HandleStatus.ADMITTED for h in apps)

    def test_handle_for_finds_cross_shard(self, fleet):
        handle = fleet.register_application(demand(0, zone="z2"))
        assert fleet.handle_for("app-0", "z2:cl-0") is handle


class TestQueuedLifecycle:
    def test_status_walks_queued_admitted_running(self, fleet):
        handle = fleet.submit(demand())
        assert handle.status is HandleStatus.QUEUED
        assert handle.submitted_at == pytest.approx(fleet.clock.now)
        fleet.run(6, dt=0.1)
        assert handle.status is HandleStatus.RUNNING
        assert handle.served_at >= handle.admitted_at

    def test_satisfaction_before_admission_raises(self, fleet):
        handle = fleet.submit(demand())
        with pytest.raises(ServiceError):
            handle.satisfaction()

    def test_stop_running_handle_releases_key(self, fleet):
        handle = fleet.submit(demand())
        fleet.run(6, dt=0.1)
        assert handle.status is HandleStatus.RUNNING
        response = fleet.stop_application("app-0", "z1:cl-0")
        assert response.status is RequestStatus.STOPPED
        again = fleet.submit(demand())
        fleet.run(6, dt=0.1)
        assert again.status is HandleStatus.RUNNING

    def test_legacy_attributes_raise_on_fleet_handles(self, fleet):
        handle = fleet.register_application(demand())
        for name in ("demand", "calls", "tasks", "active", "stopped"):
            with pytest.raises(AttributeError):
                getattr(handle, name)
