"""SurfOS kernel façade: construction, boot, delegation."""

import numpy as np
import pytest

from repro import SurfOS, SurfOSError, ghz
from repro.geometry import apartment_sites, two_room_apartment, vec3
from repro.hwmgr import AccessPoint, ClientDevice, Sensor
from repro.orchestrator import Adam
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


@pytest.fixture()
def unbooted():
    env = two_room_apartment()
    sites = apartment_sites()
    os_ = SurfOS(
        env, frequency_hz=FREQ, optimizer=Adam(max_iterations=30),
        grid_spacing_m=1.0,
    )
    os_.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    os_.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            8,
            8,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    os_.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    return os_


class TestConstruction:
    def test_registration_before_boot(self, unbooted):
        assert unbooted.hardware.surface_ids() == ["s1"]
        assert unbooted.hardware.client("phone") is not None
        assert "not booted" in unbooted.summary()

    def test_sensor_registration(self, unbooted):
        sensor = Sensor("pd", vec3(6, 2, 1), "power", read=lambda: -42.0)
        unbooted.add_sensor(sensor)
        assert unbooted.hardware.sensor("pd").measure() == -42.0

    def test_services_require_boot(self, unbooted):
        with pytest.raises(SurfOSError):
            unbooted.handle_user_demand("charge my phone")
        with pytest.raises(SurfOSError):
            unbooted.translate_only("charge my phone")
        with pytest.raises(SurfOSError):
            unbooted.serve_application("video_streaming", "phone", "bedroom")
        with pytest.raises(SurfOSError):
            unbooted.reoptimize()


class TestBoot:
    def test_boot_wires_all_layers(self, unbooted):
        system = unbooted.boot()
        assert system.orchestrator is not None
        assert system.broker is not None
        assert system.translator is not None
        assert system.daemon is not None
        assert "booted" in system.summary()

    def test_boot_twice_rejected(self, unbooted):
        unbooted.boot()
        with pytest.raises(SurfOSError):
            unbooted.boot()

    def test_boot_returns_self_for_chaining(self, unbooted):
        assert unbooted.boot() is unbooted

    def test_daemon_shares_dynamics_bus(self, unbooted):
        system = unbooted.boot()
        assert system.daemon.bus is system.dynamics.bus


class TestDelegation:
    def test_translate_only_does_not_execute(self, unbooted):
        system = unbooted.boot()
        calls = system.translate_only("charge my phone please")
        assert calls and calls[0].function == "init_powering"
        # Nothing was admitted.
        assert system.orchestrator.scheduler.tasks() == []

    def test_reoptimize_kwargs_forwarded(self, unbooted):
        system = unbooted.boot()
        system.orchestrator.enhance_link("phone")
        configs = system.reoptimize(rounds=1)
        assert "s1" in configs
        assert configs["s1"].shape == (8, 8)
