"""Unit-conversion sanity and round-trip tests."""

import math

import pytest

from repro.core import units


def test_db_linear_round_trip():
    for db in (-30.0, -3.0, 0.0, 3.0, 10.0, 60.0):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)


def test_dbm_watts_round_trip():
    for dbm in (-90.0, -30.0, 0.0, 20.0, 30.0):
        assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)


def test_zero_dbm_is_one_milliwatt():
    assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)
    assert units.dbm_to_milliwatts(0.0) == pytest.approx(1.0)


def test_linear_to_db_clamps_nonpositive():
    assert units.linear_to_db(0.0) <= -290.0
    assert units.linear_to_db(-1.0) <= -290.0


def test_wavelength_2_4ghz():
    assert units.wavelength(units.ghz(2.4)) == pytest.approx(0.12491, rel=1e-3)


def test_wavelength_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.wavelength(0.0)


def test_ghz_mhz_helpers():
    assert units.ghz(2.4) == pytest.approx(2.4e9)
    assert units.mhz(20.0) == pytest.approx(2e7)


def test_thermal_noise_classic_value():
    # kTB for 1 Hz at 290 K is the textbook -174 dBm.
    assert units.thermal_noise_dbm(1.0) == pytest.approx(-173.975, abs=0.05)


def test_thermal_noise_scales_with_bandwidth():
    base = units.thermal_noise_dbm(1e6)
    assert units.thermal_noise_dbm(1e7) == pytest.approx(base + 10.0, abs=1e-6)


def test_thermal_noise_adds_noise_figure():
    assert units.thermal_noise_dbm(1e6, noise_figure_db=7.0) == pytest.approx(
        units.thermal_noise_dbm(1e6) + 7.0
    )


def test_thermal_noise_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        units.thermal_noise_dbm(0.0)
