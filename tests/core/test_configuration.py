"""SurfaceConfiguration semantics: wrapping, quantization, granularity."""

import numpy as np
import pytest

from repro.core import (
    ConfigurationError,
    Granularity,
    SurfaceConfiguration,
    quantize_phase,
    tie_to_granularity,
    wrap_phase,
)

TWO_PI = 2.0 * np.pi


def test_wrap_phase_into_canonical_interval():
    phases = np.array([-0.1, 0.0, TWO_PI, 3 * np.pi])
    wrapped = wrap_phase(phases)
    assert np.all(wrapped >= 0.0) and np.all(wrapped < TWO_PI)
    assert wrapped[3] == pytest.approx(np.pi)


def test_quantize_one_bit_snaps_to_zero_or_pi():
    phases = np.array([[0.1, 3.0, 5.0, 6.2]])
    q = quantize_phase(phases, bits=1)
    assert set(np.round(q, 6).ravel()) <= {0.0, round(np.pi, 6)}


def test_quantize_levels_count():
    phases = np.linspace(0, TWO_PI, 64, endpoint=False).reshape(8, 8)
    q = quantize_phase(phases, bits=2)
    assert len(np.unique(np.round(q, 9))) <= 4


def test_quantize_rejects_zero_bits():
    with pytest.raises(ConfigurationError):
        quantize_phase(np.zeros((2, 2)), bits=0)


def test_tie_column_shares_state_per_column():
    rng = np.random.default_rng(0)
    values = rng.uniform(0, TWO_PI, size=(4, 6))
    tied = tie_to_granularity(values, Granularity.COLUMN)
    assert np.allclose(tied, tied[0:1, :])


def test_tie_row_shares_state_per_row():
    rng = np.random.default_rng(1)
    values = rng.uniform(0, TWO_PI, size=(4, 6))
    tied = tie_to_granularity(values, Granularity.ROW)
    assert np.allclose(tied, tied[:, 0:1])


def test_tie_element_is_identity():
    values = np.random.default_rng(2).uniform(0, TWO_PI, size=(3, 3))
    assert np.allclose(tie_to_granularity(values, Granularity.ELEMENT), values)


def test_tie_global_single_value():
    values = np.random.default_rng(3).uniform(0, TWO_PI, size=(3, 5))
    tied = tie_to_granularity(values, Granularity.GLOBAL)
    assert len(np.unique(np.round(tied, 9))) == 1


def test_tie_preserves_uniform_input():
    values = np.full((3, 4), 1.25)
    for g in Granularity:
        assert np.allclose(tie_to_granularity(values, g), values)


def test_degrees_of_freedom():
    assert Granularity.ELEMENT.degrees_of_freedom(4, 6) == 24
    assert Granularity.COLUMN.degrees_of_freedom(4, 6) == 6
    assert Granularity.ROW.degrees_of_freedom(4, 6) == 4
    assert Granularity.GLOBAL.degrees_of_freedom(4, 6) == 1


def test_configuration_defaults_unit_amplitude():
    cfg = SurfaceConfiguration.zeros(2, 3)
    assert cfg.amplitudes.shape == (2, 3)
    assert np.allclose(cfg.amplitudes, 1.0)
    assert cfg.num_elements == 6


def test_configuration_coefficients_magnitude_phase():
    cfg = SurfaceConfiguration(
        phases=np.array([[0.0, np.pi]]), amplitudes=np.array([[1.0, 0.5]])
    )
    coeffs = cfg.coefficients()
    assert coeffs[0, 0] == pytest.approx(1.0)
    assert coeffs[0, 1] == pytest.approx(-0.5)


def test_configuration_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        SurfaceConfiguration(phases=np.zeros(4))
    with pytest.raises(ConfigurationError):
        SurfaceConfiguration(
            phases=np.zeros((2, 2)), amplitudes=np.zeros((2, 3))
        )


def test_configuration_rejects_amplitude_out_of_range():
    with pytest.raises(ConfigurationError):
        SurfaceConfiguration(
            phases=np.zeros((1, 2)), amplitudes=np.array([[0.5, 1.5]])
        )


def test_random_configuration_deterministic_with_seed():
    a = SurfaceConfiguration.random(4, 4, rng=np.random.default_rng(7))
    b = SurfaceConfiguration.random(4, 4, rng=np.random.default_rng(7))
    assert a == b


def test_with_phases_keeps_amplitudes():
    cfg = SurfaceConfiguration(
        phases=np.zeros((2, 2)), amplitudes=np.full((2, 2), 0.25)
    )
    out = cfg.with_phases(np.full(4, np.pi))
    assert np.allclose(out.amplitudes, 0.25)
    assert np.allclose(out.phases, np.pi)


def test_copy_is_independent():
    cfg = SurfaceConfiguration.zeros(2, 2)
    dup = cfg.copy()
    dup.phases[0, 0] = 1.0
    assert cfg.phases[0, 0] == 0.0


def test_quantized_configuration_round_trip_name():
    cfg = SurfaceConfiguration.random(3, 3, rng=np.random.default_rng(0), name="x")
    q = cfg.quantized(2)
    assert q.name == "x"
    assert len(np.unique(np.round(q.phases, 9))) <= 4


def test_flat_phases_row_major():
    phases = np.arange(6.0).reshape(2, 3) * 0.1
    cfg = SurfaceConfiguration(phases=phases)
    assert np.allclose(cfg.flat_phases(), phases.reshape(-1))
