"""RequestQueue: bounds, backpressure, priority classes, drain order."""

from repro.broker import ApplicationDemand, RequestStatus, ServiceRequest
from repro.pipeline import PipelineConfig, PriorityClass, RequestQueue


def demand(i, latency_ms=None, priority=5):
    return ApplicationDemand(
        app_name=f"app-{i}",
        client_id=f"cl-{i}",
        room_id="bedroom",
        throughput_mbps=10.0,
        latency_ms=latency_ms,
        priority=priority,
    )


def request(i, **kw):
    return ServiceRequest(demand=demand(i, **kw))


class TestBackpressure:
    def test_offer_within_capacity_queues(self):
        queue = RequestQueue(capacity=2)
        response = queue.offer(request(0))
        assert response.status is RequestStatus.QUEUED
        assert response.ok
        assert queue.depth == 1

    def test_offer_beyond_capacity_rejects_with_reason(self):
        queue = RequestQueue(capacity=2)
        queue.offer(request(0))
        queue.offer(request(1))
        response = queue.offer(request(2))
        assert response.status is RequestStatus.REJECTED
        assert not response.ok
        assert "full" in response.reason
        assert queue.depth == 2
        assert queue.rejected == 1

    def test_rejection_never_raises(self):
        queue = RequestQueue(capacity=1)
        queue.offer(request(0))
        for i in range(1, 20):
            assert not queue.offer(request(i))

    def test_drain_frees_capacity(self):
        queue = RequestQueue(capacity=1)
        queue.offer(request(0))
        assert not queue.offer(request(1))
        queue.drain(max_batch=8)
        assert queue.offer(request(2)).ok


class TestPriorityClasses:
    def test_latency_sensitive_is_interactive(self):
        req = request(0, latency_ms=10.0)
        assert PriorityClass.classify(req) is PriorityClass.INTERACTIVE

    def test_low_priority_is_bulk(self):
        assert (
            PriorityClass.classify(request(0, priority=2))
            is PriorityClass.BULK
        )

    def test_default_is_normal(self):
        assert (
            PriorityClass.classify(request(0, priority=6))
            is PriorityClass.NORMAL
        )

    def test_drain_order_interactive_first_then_priority_then_fifo(self):
        queue = RequestQueue(capacity=8)
        bulk = request(0, priority=2)
        normal_a = request(1, priority=6)
        normal_b = request(2, priority=8)
        interactive = request(3, latency_ms=5.0, priority=4)
        for req in (bulk, normal_a, normal_b, interactive):
            queue.offer(req)
        drained = [e.request for e in queue.drain(max_batch=8)]
        assert drained == [interactive, normal_b, normal_a, bulk]

    def test_drain_respects_max_batch(self):
        queue = RequestQueue(capacity=8)
        for i in range(5):
            queue.offer(request(i))
        first = queue.drain(max_batch=3)
        assert len(first) == 3
        assert queue.depth == 2
        second = queue.drain(max_batch=3)
        assert len(second) == 2


class TestConfigValidation:
    def test_bad_values_rejected(self):
        import pytest

        from repro.core.errors import ServiceError

        for kw in (
            {"queue_capacity": 0},
            {"max_batch": 0},
            {"coalesce_window_s": -1.0},
            {"parallelism": 0},
            {"eval_chunk": 0},
            {"reoptimize_rounds": 0},
        ):
            with pytest.raises(ServiceError):
                PipelineConfig(**kw)
