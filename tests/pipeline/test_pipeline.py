"""RequestPipeline: batched admission, coalescing window, backpressure."""

import pytest

from repro.broker import ApplicationDemand, HandleStatus, RequestStatus
from repro.pipeline import PipelineConfig


def demand(i, priority=5, throughput=10.0):
    return ApplicationDemand(
        app_name=f"app-{i}",
        client_id=f"cl-{i}",
        room_id="bedroom",
        throughput_mbps=throughput,
        priority=priority,
    )


class TestBatchedAdmission:
    def test_one_tick_admits_whole_burst_in_one_pass(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        handles = [pipeline.submit(demand(i)) for i in range(4)]
        assert all(h.status is HandleStatus.QUEUED for h in handles)
        pipeline.clock.advance(0.5)
        tick = pipeline.tick()
        assert tick.drained == 4
        assert len(tick.admitted) == 4
        # One admit_batch pass, not four admissions.
        counters = system.telemetry.snapshot().counters
        assert counters["scheduler.batch_admissions"] == 1
        assert counters["scheduler.batch_admitted_tasks"] == 4

    def test_burst_is_served_by_one_coalesced_solve(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        for i in range(4):
            pipeline.submit(demand(i))
        pipeline.run(steps=2, dt=0.5)
        assert pipeline.stats.reoptimizations == 1
        assert len(pipeline.stats.latencies) == 4
        assert pipeline.stats.coalesce_ratio >= 1.0

    def test_max_batch_spills_to_next_tick(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(max_batch=2, coalesce_window_s=0.0)
        )
        for i in range(3):
            pipeline.submit(demand(i))
        pipeline.clock.advance(0.5)
        first = pipeline.tick()
        assert first.drained == 2
        assert pipeline.queue.depth == 1
        pipeline.clock.advance(0.5)
        second = pipeline.tick()
        assert second.drained == 1

    def test_duplicate_key_rejected_without_aborting_batch(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        first = pipeline.submit(demand(0))
        dup = pipeline.submit(demand(0))
        other = pipeline.submit(demand(1))
        pipeline.run(steps=2, dt=0.5)
        assert first.status is HandleStatus.RUNNING
        assert dup.status is HandleStatus.REJECTED
        assert "already served" in dup.reason
        assert other.status is HandleStatus.RUNNING


class TestBackpressure:
    def test_queue_overflow_rejects_submit(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(queue_capacity=2, coalesce_window_s=0.0)
        )
        accepted = [pipeline.submit(demand(i)) for i in range(2)]
        overflow = pipeline.submit(demand(2))
        assert all(h.status is HandleStatus.QUEUED for h in accepted)
        assert overflow.status is HandleStatus.REJECTED
        assert "full" in overflow.reason
        assert pipeline.stats.rejected == 1
        # A rejected handle never reaches the broker.
        with pytest.raises(Exception):
            overflow.satisfaction()

    def test_rejected_request_can_be_resubmitted_after_drain(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(queue_capacity=1, coalesce_window_s=0.0)
        )
        pipeline.submit(demand(0))
        assert pipeline.submit(demand(1)).status is HandleStatus.REJECTED
        pipeline.run(steps=2, dt=0.5)
        retry = pipeline.submit(demand(1))
        assert retry.status is HandleStatus.QUEUED


class TestCoalescingWindow:
    def test_triggers_within_window_collapse_into_one_solve(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=1.0)
        )
        pipeline.submit(demand(0))
        pipeline.clock.advance(0.25)
        pipeline.tick()  # admits, notes the admission trigger
        assert pipeline.stats.reoptimizations == 0
        pipeline.note_trigger("endpoint-moved")
        pipeline.note_trigger("channel-degraded")
        pipeline.clock.advance(0.5)
        pipeline.tick()  # 0.5 elapsed < 1.0: still coalescing
        assert pipeline.stats.reoptimizations == 0
        pipeline.clock.advance(0.5)
        tick = pipeline.tick()  # 1.0 elapsed: fires once for all three
        assert tick.reoptimized
        assert len(tick.coalesced) == 3
        assert pipeline.stats.reoptimizations == 1
        assert pipeline.stats.coalesce_ratio == 3.0

    def test_zero_window_fires_on_next_tick(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        pipeline.submit(demand(0))
        pipeline.clock.advance(0.1)
        tick = pipeline.tick()
        assert tick.reoptimized

    def test_trigger_without_active_tasks_is_dropped(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        pipeline.note_trigger("channel-degraded")
        pipeline.clock.advance(0.5)
        tick = pipeline.tick()
        assert not tick.reoptimized
        assert pipeline.stats.reoptimizations == 0

    def test_detection_time_is_earliest_trigger(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=1.0)
        )
        pipeline.submit(demand(0))
        pipeline.clock.advance(0.25)
        pipeline.tick()
        first_at = pipeline.clock.now
        pipeline.clock.advance(2.0)
        tick = pipeline.tick()
        assert tick.reoptimized
        assert tick.first_trigger_at == pytest.approx(first_at)
        assert tick.primary_trigger == "admission"


class TestDirtySet:
    def test_admission_marks_dirty_and_solve_clears(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        pipeline.submit(demand(0))
        pipeline.clock.advance(0.5)
        pipeline.tick()
        assert system.orchestrator.dirty_task_ids == []

    def test_mobility_marks_affected_tasks_dirty(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        handle = pipeline.submit(demand(0))
        pipeline.run(steps=1, dt=0.5)
        system.hardware.client("cl-0").move_to((5.5, 1.0, 1.0))
        affected = system.orchestrator.refresh_client_tasks("cl-0")
        assert affected == handle.task_ids
        assert system.orchestrator.dirty_task_ids == sorted(handle.task_ids)

    def test_batch_admission_context_rejects_nesting(self, system):
        from repro.core.errors import ServiceError

        with system.orchestrator.batch_admission():
            with pytest.raises(ServiceError):
                with system.orchestrator.batch_admission():
                    pass


class TestDaemonIntegration:
    def test_daemon_routes_triggers_through_pipeline(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        handle = pipeline.submit(demand(0))
        handle.wait(timeout_s=5.0, dt=0.5)
        assert handle.status is HandleStatus.RUNNING
        # Endpoint motion → daemon notes the trigger → pipeline solves.
        before = pipeline.stats.reoptimizations
        from repro.runtime import EndpointMoved

        system.hardware.client("cl-0").move_to((5.0, 1.2, 1.0))
        system.daemon.bus.publish(
            EndpointMoved(
                time=system.daemon.clock.now,
                client_id="cl-0",
                position=(5.0, 1.2, 1.0),
            )
        )
        record = system.daemon.step(dt=0.5)
        assert record is not None
        assert record.trigger == "endpoint-moved"
        assert pipeline.stats.reoptimizations == before + 1


class TestStopAndReap:
    def test_stop_queued_request_cancels_in_place(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        handle = pipeline.submit(demand(0))
        response = handle.stop()
        assert response.status is RequestStatus.STOPPED
        assert handle.status is HandleStatus.STOPPED
        pipeline.clock.advance(0.5)
        tick = pipeline.tick()
        # The cancelled entry consumed no batch slot and was not served.
        assert tick.drained == 0
        assert pipeline.stats.admitted == 0

    def test_expired_parked_task_frees_slices_via_reap(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=10.0)
        )
        handle = pipeline.submit(
            ApplicationDemand(
                app_name="sense",
                client_id="cl-0",
                room_id="bedroom",
                needs_sensing=True,
                priority=5,
            )
        )
        pipeline.clock.advance(0.5)
        pipeline.tick()  # admitted (READY), parked behind the window
        assert handle.status is HandleStatus.ADMITTED
        # Sensing tasks carry a duration; let it lapse while READY.
        task = system.orchestrator.scheduler.task(handle.task_id)
        finished = system.orchestrator.tick(now=task.created_at + 1e6)
        assert handle.task_id in finished
        assert (
            system.orchestrator.scheduler.allocator.tasks_with_allocations()
            == []
        )
