"""BatchEvaluator: worker-pool evaluation must be bit-identical to serial."""

import numpy as np
import pytest

from repro.pipeline import BatchEvaluator


class SummingObjective:
    """A nonlinear reduction where operand order matters in floats."""

    def value_many(self, batch):
        batch = np.atleast_2d(batch)
        return np.sin(batch).sum(axis=1) + np.cumsum(
            batch * 1e-8, axis=1
        )[:, -1]


@pytest.mark.parametrize("rows", [1, 3, 8, 17, 64])
def test_parallel_bit_identical_to_serial(rows):
    rng = np.random.default_rng(42)
    batch = rng.normal(size=(rows, 24))
    objective = SummingObjective()
    serial = BatchEvaluator(parallelism=1, chunk=8)
    with BatchEvaluator(parallelism=4, chunk=8) as parallel:
        a = serial.value_many(objective, batch)
        b = parallel.value_many(objective, batch)
    # Bit-identical, not approximately equal: the chunk grid depends
    # only on the chunk size, so no float ever sums across a worker
    # boundary.
    assert a.tobytes() == b.tobytes()


def test_chunk_grid_independent_of_parallelism():
    rng = np.random.default_rng(0)
    batch = rng.normal(size=(20, 4))
    objective = SummingObjective()
    results = []
    for workers in (1, 2, 3, 8):
        with BatchEvaluator(parallelism=workers, chunk=6) as ev:
            results.append(ev.value_many(objective, batch).tobytes())
    assert len(set(results)) == 1


def test_counters_and_shapes():
    ev = BatchEvaluator(parallelism=1, chunk=4)
    out = ev.value_many(SummingObjective(), np.zeros((10, 3)))
    assert out.shape == (10,)
    assert ev.batches == 1
    assert ev.chunks_evaluated == 3  # 4 + 4 + 2

    single = ev.value_many(SummingObjective(), np.zeros((1, 3)))
    assert single.shape == (1,)


def test_invalid_construction():
    with pytest.raises(ValueError):
        BatchEvaluator(parallelism=0)
    with pytest.raises(ValueError):
        BatchEvaluator(chunk=0)


def test_close_is_idempotent():
    ev = BatchEvaluator(parallelism=2, chunk=2)
    ev.value_many(SummingObjective(), np.zeros((8, 2)))
    ev.close()
    ev.close()


def test_close_is_terminal():
    # Regression: a closed evaluator silently fell back to serial
    # evaluation instead of failing loudly; now any use after close()
    # is an error.
    ev = BatchEvaluator(parallelism=2, chunk=2)
    ev.close()
    with pytest.raises(RuntimeError):
        ev.value_many(SummingObjective(), np.zeros((4, 2)))


def test_pipeline_close_unbinds_evaluator():
    from .conftest import build_kernel

    system = build_kernel(clients=1)
    pipeline = system.attach_pipeline()
    optimizer = system.orchestrator.optimizer
    assert optimizer.evaluator is pipeline.evaluator
    pipeline.close()
    # The optimizer must not keep a closed evaluator bound — the next
    # direct reoptimize() would hit the terminal-close error.
    assert optimizer.evaluator is None


def test_telemetry_counters_and_gauges():
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    ev = BatchEvaluator(parallelism=3, chunk=4)
    ev.bind_telemetry(telemetry)
    ev.value_many(SummingObjective(), np.zeros((10, 3)))
    snapshot = telemetry.snapshot()
    assert snapshot.counters["evaluator.batches"] == 1
    assert snapshot.counters["evaluator.chunks"] == 3
    assert snapshot.gauges["evaluator.backend"] == "thread"
    assert snapshot.gauges["evaluator.parallelism"] == 3
    ev.close()
