"""ServiceHandle lifecycle and the typed request/response envelopes."""

import pytest

from repro.broker import (
    ApplicationDemand,
    HandleStatus,
    RequestStatus,
    ServiceRequest,
    ServiceResponse,
)
from repro.core.errors import ServiceError
from repro.pipeline import PipelineConfig


def demand(i=0, priority=5):
    return ApplicationDemand(
        app_name=f"app-{i}",
        client_id=f"cl-{i}",
        room_id="bedroom",
        throughput_mbps=10.0,
        priority=priority,
    )


class TestRequestResponse:
    def test_request_ids_are_sequential_and_key_is_stable(self):
        a = ServiceRequest(demand=demand(0))
        b = ServiceRequest(demand=demand(1))
        assert a.request_id != b.request_id
        assert a.key == "app-0@cl-0"

    def test_request_is_immutable(self):
        req = ServiceRequest(demand=demand())
        with pytest.raises(AttributeError):
            req.priority = 9

    def test_response_truthiness_tracks_status(self):
        req = ServiceRequest(demand=demand())
        ok = ServiceResponse(status=RequestStatus.ADMITTED, request=req)
        bad = ServiceResponse(
            status=RequestStatus.REJECTED, request=req, reason="no"
        )
        assert ok and ok.ok
        assert not bad and not bad.ok


class TestDirectRegistration:
    def test_register_returns_admitted_handle(self, system):
        handle = system.broker.register_application(demand())
        # Without a pipeline nothing solves yet: admitted, not running.
        assert handle.status is HandleStatus.ADMITTED
        assert handle.task_ids
        system.orchestrator.reoptimize(now=0.0, rounds=1)
        assert handle.status is HandleStatus.RUNNING
        report = handle.satisfaction()
        assert report["app"] == "app-0"

    def test_duplicate_registration_raises(self, system):
        system.broker.register_application(demand())
        with pytest.raises(ServiceError):
            system.broker.register_application(demand())

    def test_stop_returns_typed_response(self, system):
        handle = system.broker.register_application(demand())
        response = system.broker.stop_application("app-0", "cl-0")
        assert isinstance(response, ServiceResponse)
        assert response.status is RequestStatus.STOPPED
        assert handle.status is HandleStatus.STOPPED

    def test_stop_unknown_app_raises(self, system):
        with pytest.raises(ServiceError):
            system.broker.stop_application("ghost", "cl-0")

    def test_applications_lists_handles(self, system):
        system.broker.register_application(demand(0))
        system.broker.register_application(demand(1))
        apps = system.broker.applications()
        assert {h.key for h in apps} == {"app-0@cl-0", "app-1@cl-1"}
        assert all(h.status is HandleStatus.ADMITTED for h in apps)


class TestPipelinedLifecycle:
    def test_status_walks_queued_admitted_running(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.3)
        )
        handle = pipeline.submit(demand())
        assert handle.status is HandleStatus.QUEUED
        assert handle.submitted_at == pytest.approx(pipeline.clock.now)
        pipeline.clock.advance(0.1)
        pipeline.tick()
        assert handle.status is HandleStatus.ADMITTED
        assert handle.admitted_at == pytest.approx(pipeline.clock.now)
        pipeline.clock.advance(0.3)
        pipeline.tick()
        assert handle.status is HandleStatus.RUNNING
        assert handle.served_at >= handle.admitted_at

    def test_satisfaction_before_admission_raises(self, system):
        pipeline = system.attach_pipeline(PipelineConfig())
        handle = pipeline.submit(demand())
        with pytest.raises(ServiceError):
            handle.satisfaction()

    def test_wait_pumps_the_clock_until_served(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.2)
        )
        handle = pipeline.submit(demand())
        assert handle.wait(timeout_s=5.0, dt=0.1) is HandleStatus.RUNNING

    def test_wait_times_out_without_ticks(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=50.0)
        )
        handle = pipeline.submit(demand())
        settled = handle.wait(timeout_s=0.5, dt=0.1)
        assert settled is HandleStatus.ADMITTED

    def test_stop_running_handle_releases_key(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.0)
        )
        handle = pipeline.submit(demand())
        handle.wait(timeout_s=5.0, dt=0.5)
        response = handle.stop()
        assert response.status is RequestStatus.STOPPED
        assert handle.status is HandleStatus.STOPPED
        again = pipeline.submit(demand())
        assert again.wait(timeout_s=5.0, dt=0.5) is HandleStatus.RUNNING


class TestLegacyShimRetired:
    def test_legacy_attributes_raise(self, system):
        # The PR-4 duck-type shim has been removed: ServedApplication
        # attributes are no longer reachable through the handle.
        handle = system.broker.register_application(demand())
        for name in ("demand", "calls", "tasks", "active", "stopped"):
            with pytest.raises(AttributeError):
                getattr(handle, name)

    def test_typed_surface_does_not_warn(self, system, recwarn):
        handle = system.broker.register_application(demand())
        handle.status
        handle.task_ids
        handle.satisfaction()
        deprecations = [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
        assert deprecations == []
