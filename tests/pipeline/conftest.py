"""Shared fixtures: a small apartment kernel for pipeline tests."""

import pytest

from repro import SurfOS, ghz
from repro.broker.calls import reset_request_counter
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import RandomSearch
from repro.orchestrator.tasks import reset_task_counter
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


def build_kernel(clients=4, panel_size=8, seed=0):
    """A booted kernel with ``clients`` devices in the bedroom.

    Resets the module-level task/request counters so repeated builds
    inside one test see identical ids (the determinism tests diff two
    runs' telemetry byte for byte).
    """
    reset_task_counter()
    reset_request_counter()
    env = two_room_apartment()
    sites = apartment_sites()
    system = SurfOS(
        env,
        frequency_hz=FREQ,
        optimizer=RandomSearch(max_iterations=6, seed=seed),
        grid_spacing_m=1.0,
    )
    system.add_access_point(
        AccessPoint(
            "ap", sites.ap_position, 4, FREQ, boresight=(1.0, 0.3, 0.0)
        )
    )
    system.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            panel_size,
            panel_size,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    positions = [
        (6.5, 1.5, 1.0),
        (6.0, 2.5, 1.0),
        (7.2, 1.1, 1.0),
        (5.6, 3.0, 1.0),
        (7.8, 2.2, 1.0),
        (5.2, 0.9, 1.0),
    ]
    for i in range(clients):
        system.add_client(ClientDevice(f"cl-{i}", positions[i % len(positions)]))
    return system.boot(observe_room="bedroom")


@pytest.fixture()
def system():
    return build_kernel()
