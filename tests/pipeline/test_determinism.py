"""Parallel evaluation must not perturb the simulation.

Two identical workloads that differ only in ``parallelism`` must leave
byte-identical sim-only telemetry behind: same admissions, same solves,
same objective values, same task states. The chunk grid used by
``BatchEvaluator`` depends only on ``eval_chunk``, never on the worker
count, so no floating-point reduction ever crosses a worker boundary.
"""

import json

from repro.broker import ApplicationDemand
from repro.pipeline import EvaluationConfig, PipelineConfig

from .conftest import build_kernel


def _workload(parallelism, path):
    system = build_kernel(clients=4, seed=7)
    pipeline = system.attach_pipeline(
        PipelineConfig(
            evaluation=EvaluationConfig(parallelism=parallelism, chunk=4),
            coalesce_window_s=0.2,
        )
    )
    apps = ["video_streaming", "online_meeting", "file_transfer", "iot_hub"]
    try:
        for i, app in enumerate(apps):
            pipeline.submit(
                ApplicationDemand(
                    app_name=app,
                    client_id=f"cl-{i}",
                    room_id="bedroom",
                    throughput_mbps=20.0 - i,
                    priority=5 + (i % 3),
                )
            )
        pipeline.run(steps=8, dt=0.1)
        # A mid-run perturbation so the second solve sees a dirty set.
        system.hardware.client("cl-0").move_to((5.4, 1.3, 1.0))
        system.orchestrator.refresh_client_tasks("cl-0")
        pipeline.note_trigger("endpoint-moved")
        pipeline.run(steps=4, dt=0.1)
    finally:
        pipeline.close()
    system.telemetry.export_jsonl(path, sim_only=True)
    return system


def test_parallel_4_matches_serial_byte_for_byte(tmp_path):
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    _workload(1, serial_path)
    _workload(4, parallel_path)
    serial = serial_path.read_bytes()
    parallel = parallel_path.read_bytes()
    assert len(serial) > 0
    assert serial == parallel


def test_same_seed_same_outcome_summary(tmp_path):
    a = _workload(1, tmp_path / "a.jsonl")
    b = _workload(1, tmp_path / "b.jsonl")
    sa = a.telemetry.snapshot()
    sb = b.telemetry.snapshot()
    assert sa.counters == sb.counters


def test_exported_records_are_valid_jsonl(tmp_path):
    path = tmp_path / "run.jsonl"
    _workload(2, path)
    lines = path.read_text().splitlines()
    assert lines
    for line in lines:
        record = json.loads(line)
        assert "kind" in record
