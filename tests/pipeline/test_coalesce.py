"""Adaptive coalescing: controller unit tests, window boundary pin,
event-driven pumping, and the config conflict guard."""

import pytest

from repro.broker import ApplicationDemand, HandleStatus
from repro.core.errors import ServiceError
from repro.pipeline import (
    AdaptiveCoalesceConfig,
    AdaptiveCoalescer,
    EvaluationConfig,
    PipelineConfig,
    WINDOW_CLOSE_EPS_S,
)


def demand(i, priority=5):
    return ApplicationDemand(
        app_name=f"app-{i}",
        client_id=f"cl-{i}",
        room_id="bedroom",
        throughput_mbps=10.0,
        priority=priority,
    )


class TestAdaptiveCoalescer:
    def test_cold_window_is_minimum(self):
        coalescer = AdaptiveCoalescer()
        assert coalescer.window_s(0.0) == 0.0

    def test_pressure_opens_window(self):
        # Triggers arriving much faster than the solve cost → coalesce
        # for about one solve's worth of time.
        coalescer = AdaptiveCoalescer(
            AdaptiveCoalesceConfig(initial_cost_s=0.1)
        )
        for i in range(5):
            coalescer.observe_trigger(i * 0.01)
        assert coalescer.window_s(0.05) == pytest.approx(0.1)

    def test_silence_collapses_open_window(self):
        # The same pressured controller: once the silence since the
        # last trigger exceeds the solve cost, the window drops to the
        # minimum even though the gap EWMA is still small.
        coalescer = AdaptiveCoalescer(
            AdaptiveCoalesceConfig(initial_cost_s=0.1)
        )
        for i in range(5):
            coalescer.observe_trigger(i * 0.01)
        assert coalescer.window_s(0.04 + 0.5) == 0.0

    def test_sparse_triggers_keep_window_closed(self):
        coalescer = AdaptiveCoalescer(
            AdaptiveCoalesceConfig(initial_cost_s=0.05)
        )
        for i in range(5):
            coalescer.observe_trigger(i * 1.0)  # 1 s apart, cost 50 ms
        assert coalescer.window_s(4.0) == 0.0

    def test_solve_cost_ewma(self):
        coalescer = AdaptiveCoalescer(
            AdaptiveCoalesceConfig(alpha=0.5, initial_cost_s=0.1)
        )
        coalescer.observe_solve_cost(0.3)
        assert coalescer.solve_cost_estimate_s == pytest.approx(0.2)
        coalescer.observe_solve_cost(-1.0)  # ignored
        assert coalescer.solve_cost_estimate_s == pytest.approx(0.2)

    def test_window_capped_at_max(self):
        coalescer = AdaptiveCoalescer(
            AdaptiveCoalesceConfig(max_window_s=0.08, initial_cost_s=0.2)
        )
        for i in range(5):
            coalescer.observe_trigger(i * 0.01)
        assert coalescer.window_s(0.05) == pytest.approx(0.08)

    def test_reset_returns_to_cold(self):
        coalescer = AdaptiveCoalescer(
            AdaptiveCoalesceConfig(initial_cost_s=0.1)
        )
        for i in range(5):
            coalescer.observe_trigger(i * 0.01)
        coalescer.observe_solve_cost(0.4)
        coalescer.reset()
        assert coalescer.window_s(1.0) == 0.0
        assert coalescer.solve_cost_estimate_s == pytest.approx(0.1)

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            AdaptiveCoalesceConfig(min_window_s=-0.1)
        with pytest.raises(ServiceError):
            AdaptiveCoalesceConfig(min_window_s=0.5, max_window_s=0.1)
        with pytest.raises(ServiceError):
            AdaptiveCoalesceConfig(alpha=0.0)
        with pytest.raises(ServiceError):
            AdaptiveCoalesceConfig(busy_factor=0.0)


class TestWindowBoundary:
    def test_window_closes_on_exact_boundary_tick(self, system):
        # The pinned float bug: after trigger at t=0.1 with a 0.1 s
        # window, ten 0.1 s clock advances put now at 0.2 — but the
        # accumulated sum is a hair below it in the last ulps, so the
        # strict `now - first_at < window` comparison kept the window
        # open one tick too long.  The inclusive (epsilon) close must
        # solve on the boundary tick.
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.5)
        )
        pipeline.submit(demand(0))
        # Advance in 0.05 steps: 11 advances ≈ 0.55, crossing the
        # admission tick (queue drains on the first) plus the window.
        solved_at = None
        for _ in range(14):
            pipeline.clock.advance(0.05)
            outcome = pipeline.tick()
            if outcome.reoptimized:
                solved_at = pipeline.clock.now
                break
        assert solved_at is not None
        first_tick = 0.05  # admission tick (queue drained, trigger)
        # Inclusive close: the solve lands on the tick that *reaches*
        # first_at + window (0.55), not the one after (0.60).
        assert solved_at == pytest.approx(first_tick + 0.5, abs=1e-6)

    def test_epsilon_is_subtick(self):
        assert 0 < WINDOW_CLOSE_EPS_S < 1e-6


class TestEventDrivenPump:
    def test_lone_request_solved_at_arrival_without_grid(self, system):
        # pump() must advance the clock to the exact admission/window
        # instants — a lone request under adaptive coalescing is solved
        # with zero added window latency, on no tick grid at all.
        pipeline = system.attach_pipeline(
            PipelineConfig(adaptive=AdaptiveCoalesceConfig())
        )
        handle = pipeline.submit(demand(0))
        results = pipeline.pump(horizon_s=5.0)
        assert handle.status is HandleStatus.RUNNING
        assert pipeline.stats.reoptimizations == 1
        # The solve happened immediately (cold coalescer → zero
        # window), not at the 5 s horizon.
        assert pipeline.clock.now < 1.0
        assert any(r.reoptimized for r in results)

    def test_pump_idles_out_when_nothing_pending(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(adaptive=AdaptiveCoalesceConfig())
        )
        assert pipeline.pump(horizon_s=1.0) == []

    def test_pump_respects_scheduled_arrivals(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(adaptive=AdaptiveCoalesceConfig())
        )
        pipeline.clock.schedule(0.7, lambda: pipeline.submit(demand(0)))
        pipeline.pump(horizon_s=5.0)
        assert pipeline.stats.reoptimizations == 1
        # Clock jumped to the arrival, then the admission instant —
        # never past what the events required.
        assert 0.7 <= pipeline.clock.now < 1.7

    def test_next_deadline_tracks_pending_window(self, system):
        pipeline = system.attach_pipeline(
            PipelineConfig(coalesce_window_s=0.3)
        )
        assert pipeline.next_deadline() is None
        pipeline.submit(demand(0))
        # Queued work → immediate deadline.
        assert pipeline.next_deadline() == pipeline.clock.now
        pipeline.clock.advance(0.01)
        pipeline.tick()  # drains the queue, opens the window
        deadline = pipeline.next_deadline()
        assert deadline == pytest.approx(0.01 + 0.3)


class TestConfigConflict:
    def test_legacy_mirrors_raise_with_explicit_evaluation(self):
        with pytest.raises(ServiceError, match="parallelism"):
            PipelineConfig(
                evaluation=EvaluationConfig(parallelism=2),
                parallelism=4,
            )
        with pytest.raises(ServiceError, match="eval_chunk"):
            PipelineConfig(
                evaluation=EvaluationConfig(chunk=8), eval_chunk=4
            )

    def test_legacy_conveniences_build_evaluation(self):
        config = PipelineConfig(parallelism=3, eval_chunk=5)
        assert config.evaluation.parallelism == 3
        assert config.evaluation.chunk == 5

    def test_adaptive_excludes_fixed_window_semantics(self, system):
        # With adaptive set, the effective window comes from the
        # controller, not coalesce_window_s.
        pipeline = system.attach_pipeline(
            PipelineConfig(
                adaptive=AdaptiveCoalesceConfig(),
                coalesce_window_s=0.4,
            )
        )
        assert pipeline.effective_window_s(0.0) == 0.0
