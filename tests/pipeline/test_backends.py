"""Evaluation backends: thread, process, serial — one bit pattern.

The determinism contract behind ``bind_evaluator``: for a fixed chunk
size, every backend at every worker count produces byte-identical
results, because the chunk grid depends only on the chunk config and
results are gathered in submission order.  The matrix below pins that
across backend × parallelism × chunk for plain and stacked objectives,
and a pipelined run checks the contract end to end through sim-only
telemetry.
"""

import numpy as np
import pytest

from repro.broker import ApplicationDemand
from repro.channel import LinearChannelForm
from repro.orchestrator.objectives import CoverageObjective, StackedObjective
from repro.pipeline import (
    BatchEvaluator,
    EvaluationConfig,
    PipelineConfig,
    ProcessPoolEvaluator,
    build_evaluator,
)

from .conftest import build_kernel


def _parts(num=3, e=12):
    rng = np.random.default_rng(21)
    parts = []
    for _ in range(num):
        coeffs = 1e-4 * (
            rng.normal(size=(4, 2, e)) + 1j * rng.normal(size=(4, 2, e))
        )
        offset = 1e-4 * (
            rng.normal(size=(4, 2)) + 1j * rng.normal(size=(4, 2))
        )
        parts.append(
            CoverageObjective(
                LinearChannelForm("s", coeffs, offset),
                amplitudes=rng.uniform(0.3, 1.0, e),
            )
        )
    return parts


def _make_evaluator(backend, parallelism, chunk):
    if backend == "thread":
        return BatchEvaluator(parallelism=parallelism, chunk=chunk)
    return ProcessPoolEvaluator(parallelism=parallelism, chunk=chunk)


BACKENDS = ["thread", "process"]
PARALLELISMS = [1, 2, 4]


@pytest.mark.parametrize("chunk", [3, 8])
def test_value_many_matrix_bit_identical(chunk):
    """backend × parallelism at one chunk — one byte pattern."""
    (part,) = _parts(num=1)
    rng = np.random.default_rng(3)
    batch = rng.uniform(0, 2 * np.pi, (13, part.dim))
    with BatchEvaluator(parallelism=1, chunk=chunk) as serial:
        want = serial.value_many(part, batch).tobytes()
    for backend in BACKENDS:
        for parallelism in PARALLELISMS:
            with _make_evaluator(backend, parallelism, chunk) as ev:
                got = ev.value_many(part, batch).tobytes()
            assert got == want, (backend, parallelism, chunk)


@pytest.mark.parametrize("chunk", [3, 8])
def test_stacked_segments_matrix_bit_identical(chunk):
    parts = _parts(num=3)
    stacked = StackedObjective(parts)
    rng = np.random.default_rng(5)
    batches = [rng.uniform(0, 2 * np.pi, (p, parts[0].dim)) for p in (7, 13, 7)]
    with BatchEvaluator(parallelism=1, chunk=chunk) as serial:
        want = [
            v.tobytes()
            for v in serial.value_many_segments(stacked, batches)
        ]
    for backend in BACKENDS:
        for parallelism in PARALLELISMS:
            with _make_evaluator(backend, parallelism, chunk) as ev:
                got = [
                    v.tobytes()
                    for v in ev.value_many_segments(stacked, batches)
                ]
            assert got == want, (backend, parallelism, chunk)


def test_full_chunk_equals_unchunked_direct():
    """chunk >= rows: the evaluator path equals direct value_many."""
    parts = _parts(num=2)
    stacked = StackedObjective(parts)
    rng = np.random.default_rng(8)
    batches = [rng.uniform(0, 2 * np.pi, (6, parts[0].dim)) for _ in parts]
    direct = [
        part.value_many(batch).tobytes()
        for part, batch in zip(parts, batches)
    ]
    with ProcessPoolEvaluator(parallelism=2, chunk=8) as ev:
        got = [
            v.tobytes() for v in ev.value_many_segments(stacked, batches)
        ]
    assert got == direct


def test_build_evaluator_backend_selection():
    thread = build_evaluator(EvaluationConfig(backend="thread", parallelism=2))
    assert isinstance(thread, BatchEvaluator)
    assert thread.backend == "thread"
    thread.close()
    process = build_evaluator(
        EvaluationConfig(backend="process", parallelism=1)
    )
    assert isinstance(process, ProcessPoolEvaluator)
    assert process.backend == "process"
    process.close()


def _workload(backend, parallelism, path):
    system = build_kernel(clients=3, seed=13)
    pipeline = system.attach_pipeline(
        PipelineConfig(
            coalesce_window_s=0.2,
            evaluation=EvaluationConfig(
                backend=backend, parallelism=parallelism, chunk=4
            ),
        )
    )
    try:
        for i, app in enumerate(
            ["video_streaming", "online_meeting", "file_transfer"]
        ):
            pipeline.submit(
                ApplicationDemand(
                    app_name=app,
                    client_id=f"cl-{i}",
                    room_id="bedroom",
                    throughput_mbps=18.0 - i,
                    priority=4 + i,
                )
            )
        pipeline.run(steps=8, dt=0.1)
    finally:
        pipeline.close()
    system.telemetry.export_jsonl(path, sim_only=True)


def test_process_pipeline_sim_identical_to_thread(tmp_path):
    """A pipelined run leaves byte-identical sim-only telemetry on
    either backend at any worker count — the end-to-end contract."""
    thread_path = tmp_path / "thread.jsonl"
    process_path = tmp_path / "process.jsonl"
    _workload("thread", 1, thread_path)
    _workload("process", 2, process_path)
    thread_bytes = thread_path.read_bytes()
    assert len(thread_bytes) > 0
    assert thread_bytes == process_path.read_bytes()
