"""Analysis helpers: CDFs, heatmaps, tables."""

import numpy as np
import pytest

from repro.analysis import EmpiricalCDF, Heatmap, cdf_table, render_table, summarize


class TestCDF:
    def test_at_and_median(self):
        cdf = EmpiricalCDF(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == pytest.approx(0.5)
        assert cdf.at(10.0) == 1.0
        assert cdf.median == pytest.approx(2.5)

    def test_curve_shape(self):
        cdf = EmpiricalCDF(np.array([0.0, 1.0]))
        xs, ys = cdf.curve(points=11)
        assert xs.shape == ys.shape == (11,)
        assert ys[0] > 0.0  # at(min) counts the sample itself
        assert ys[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(np.array([]))

    def test_percentile_validation(self):
        cdf = EmpiricalCDF(np.array([1.0]))
        with pytest.raises(ValueError):
            cdf.percentile(101.0)

    def test_cdf_table_and_summary(self):
        cdfs = {
            "a": EmpiricalCDF(np.array([1.0, 2.0])),
            "b": EmpiricalCDF(np.array([3.0, 4.0])),
        }
        rows = cdf_table(cdfs, [2.0, 4.0])
        assert rows[0] == ["2.00", "1.00", "0.00"]
        summary = summarize(cdfs, percentiles=(50,))
        assert summary["a"]["p50"] == pytest.approx(1.5)


class TestHeatmap:
    def make(self):
        xs, ys = np.meshgrid([0.0, 1.0, 2.0], [0.0, 1.0])
        pts = np.stack([xs.ravel(), ys.ravel(), np.ones(6)], axis=1)
        values = np.arange(6.0)
        return Heatmap(pts, values)

    def test_grid_reconstruction(self):
        hm = self.make()
        xs, ys, z = hm.grid()
        assert list(xs) == [0.0, 1.0, 2.0]
        assert list(ys) == [0.0, 1.0]
        assert z[0, 0] == 0.0 and z[1, 2] == 5.0

    def test_stats(self):
        stats = self.make().stats()
        assert stats["min"] == 0.0
        assert stats["max"] == 5.0
        assert stats["median"] == pytest.approx(2.5)

    def test_render_contains_scale_and_title(self):
        text = self.make().render(title="demo")
        assert text.startswith("demo")
        assert "scale:" in text
        # North (max y) at the top: the first data row holds the
        # highest values (indices 3..5).
        lines = text.splitlines()
        assert lines[1].count("@") >= 1

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            Heatmap(np.zeros((3, 3)), np.zeros(2))

    def test_render_with_fixed_scale(self):
        text = self.make().render(lo=0.0, hi=10.0)
        assert "'@'=10.0" in text


class TestTables:
    def test_alignment_and_borders(self):
        text = render_table(("a", "long header"), [("x", 1), ("yy", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| a " in lines[1]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly aligned

    def test_title(self):
        text = render_table(("c",), [("v",)], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [("only-one",)])
