"""Security and powering services."""

import numpy as np
import pytest

from repro.channel import LinearChannelForm
from repro.core.errors import ServiceError
from repro.em import LinkBudget
from repro.orchestrator import Adam
from repro.services import (
    HARVEST_EFFICIENCY,
    SENSITIVITY_DBM,
    powering_objective,
    powering_report,
    secrecy_report,
    security_objective,
)


def make_form(rng, k=3, m=2, e=10):
    coeffs = 1e-4 * (
        rng.normal(size=(k, m, e)) + 1j * rng.normal(size=(k, m, e))
    )
    offset = np.zeros((k, m), dtype=complex)
    return LinearChannelForm("s", coeffs, offset)


class TestSecurity:
    def test_objective_separates_legit_from_eavesdropper(self, rng):
        form = make_form(rng, k=2)
        obj = security_objective(form, [0], [1], nulling_weight=1.0)
        result = Adam(max_iterations=200, learning_rate=0.25).optimize(
            obj, rng.uniform(0, 2 * np.pi, obj.dim)
        )
        # Evaluate the secrecy outcome.
        x = np.exp(1j * result.phases)
        h = form.evaluate(x)
        gains = np.sum(np.abs(h) ** 2, axis=1)
        budget = LinkBudget()
        legit_snr = budget.snr_db(gains[0])
        eve_snr = budget.snr_db(gains[1])
        assert legit_snr - eve_snr > 10.0

    def test_report(self, rng):
        form = make_form(rng, k=2)

        class FakeModel:
            def evaluate(self, configs):
                return form.evaluate(configs["s"])

        x = np.exp(1j * rng.uniform(0, 2 * np.pi, 10))
        report = secrecy_report(
            FakeModel(), {"s": x}, [0], [1], LinkBudget()
        )
        assert np.isfinite(report.secrecy_margin_db)

    def test_validation(self, rng):
        form = make_form(rng, k=2)
        with pytest.raises(ServiceError):
            security_objective(form, [0], [0])
        with pytest.raises(ServiceError):
            security_objective(form, [0], [1], nulling_weight=0.0)


class TestPowering:
    def test_optimizing_increases_harvested_power(self, rng):
        form = make_form(rng, k=1)
        obj = powering_objective(form)
        x0 = rng.uniform(0, 2 * np.pi, obj.dim)
        result = Adam(max_iterations=150).optimize(obj, x0)
        assert obj.harvested_dbm(result.phases)[0] > obj.harvested_dbm(x0)[0]

    def test_report_sensitivity_cutoff(self, rng):
        class FakeModel:
            num_points = 2

            def evaluate(self, configs):
                # One strong point (-10 dBm at 20 dBm tx → gain 1e-3),
                # one below sensitivity.
                return np.array([[np.sqrt(1e-3)], [np.sqrt(1e-9)]])

        report = powering_report(FakeModel(), {}, LinkBudget(tx_power_dbm=20))
        assert report.fraction_above_sensitivity == pytest.approx(0.5)
        assert report.mean_harvested_mw > 0.0

    def test_harvest_constants_sane(self):
        assert 0 < HARVEST_EFFICIENCY <= 1
        assert SENSITIVITY_DBM < 0
