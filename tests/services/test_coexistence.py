"""Cross-network blocking audits (§2.1's coexistence hazard)."""

import numpy as np
import pytest

from repro.core.units import ghz
from repro.channel import ula_node
from repro.em import LinkBudget
from repro.geometry import BRICK, Environment, vec3
from repro.services import VictimNetwork, audit_network, audit_networks
from repro.surfaces import (
    GENERIC_PROGRAMMABLE_28,
    OperationMode,
    SignalProperty,
    SurfacePanel,
    SurfaceSpec,
)


def make_env():
    # Open space: no reflective detours, so blockage reads directly.
    return Environment(name="open", ceiling_height=3.0)


def victim(freq=ghz(5.0), name="5GHz-WiFi"):
    ap = ula_node("victim-ap", vec3(0.5, 2.0, 1.2), 2, freq, (0, 0, 1), (1, 0, 0))
    # A straight corridor of points behind the panel position, at the
    # panel's height so every link crosses its footprint.
    points = np.stack(
        [np.linspace(4.0, 9.0, 8), np.full(8, 2.0), np.full(8, 1.2)], axis=1
    )
    return VictimNetwork(
        name=name,
        ap=ap,
        budget=LinkBudget(bandwidth_hz=80e6),
        frequency_hz=freq,
        points=points,
    )


def blocking_panel(loss_db=12.0, pid="foreign"):
    spec = SurfaceSpec(
        design="blocker-28",
        band_hz=(ghz(27), ghz(29)),
        properties=frozenset([SignalProperty.PHASE]),
        operation_mode=OperationMode.REFLECTIVE,
        reconfigurable=True,
        out_of_band_loss_db=loss_db,
    )
    # Large panel squarely across the corridor LoS.
    return SurfacePanel(pid, spec, 96, 96, vec3(3.0, 2.0, 1.2), vec3(1, 0, 0))


class TestAuditNetwork:
    def test_blocking_panel_degrades_victim(self):
        env = make_env()
        panel = blocking_panel(loss_db=12.0)
        report = audit_network(env, [panel], victim())
        assert report.median_drop_db > 5.0
        assert report.worst_point_drop_db >= report.median_drop_db - 1e-9
        assert "foreign" in report.hazard_panels

    def test_drop_tracks_through_loss(self):
        env = make_env()
        light = audit_network(env, [blocking_panel(loss_db=3.0)], victim())
        heavy = audit_network(env, [blocking_panel(loss_db=20.0)], victim())
        assert heavy.median_drop_db > light.median_drop_db

    def test_in_band_transmissive_panel_harmless(self):
        env = make_env()
        spec = SurfaceSpec(
            design="friendly-5",
            band_hz=(ghz(4.9), ghz(5.1)),
            properties=frozenset([SignalProperty.PHASE]),
            operation_mode=OperationMode.TRANSMISSIVE,
            reconfigurable=True,
            out_of_band_loss_db=10.0,
        )
        panel = SurfacePanel("friendly", spec, 32, 32, vec3(3.0, 2.0, 1.2), vec3(1, 0, 0))
        report = audit_network(env, [panel], victim())
        assert report.hazard_panels == ()
        # In-band transmissive hardware costs ~1 dB, not 10.
        assert report.median_drop_db < 2.0

    def test_panel_off_the_path_harmless(self):
        env = make_env()
        spec = blocking_panel().spec
        aside = SurfacePanel(
            "aside", spec, 32, 32, vec3(3.0, 3.9, 1.2), vec3(1, 0, 0)
        )
        report = audit_network(env, [aside], victim())
        assert report.median_drop_db < 0.5
        # Still flagged as a *potential* hazard by its through-loss.
        assert "aside" in report.hazard_panels

    def test_multi_network_audit(self):
        env = make_env()
        panel = blocking_panel(loss_db=12.0)
        reports = audit_networks(
            env,
            [panel],
            [victim(ghz(2.4), "2.4GHz"), victim(ghz(5.0), "5GHz")],
        )
        assert [r.network for r in reports] == ["2.4GHz", "5GHz"]
        for r in reports:
            assert r.median_drop_db > 3.0
            assert "drop" in r.describe()

    def test_serving_panel_not_counted_against_own_network(self):
        """A panel never blocks the network it belongs to: on its own
        band it redirects (modeled via its configuration), and the
        audit's obstacle model applies to *foreign* carriers."""
        env = make_env()
        own = SurfacePanel(
            "own",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            vec3(3.0, 3.9, 1.5),
            vec3(0, -1, 0),
        )
        report = audit_network(env, [own], victim(ghz(28.0), "28GHz-own"))
        # Reflective panel on its own band: flagged (it does block
        # through-paths) but off-path here, so no measured drop.
        assert report.median_drop_db < 1.0
