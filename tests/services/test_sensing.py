"""AoA estimation, localization errors, and the sensing loss."""

import math

import numpy as np
import pytest

from repro.core.errors import OptimizationError, ServiceError
from repro.core.units import ghz
from repro.em import focus_configuration
from repro.orchestrator.objectives import FiniteDifferenceObjective
from repro.services import (
    AngleGrid,
    AoAEstimator,
    SurfaceAoAObjective,
    element_noise_power,
    localization_objective,
    measure_localization_errors,
    surface_illumination,
)

FREQ = ghz(28)


class TestAngleGrid:
    def test_uniform_grid_symmetric(self):
        grid = AngleGrid.uniform(fov_rad=math.radians(120), count=61)
        assert grid.count == 61
        assert grid.azimuths[0] == pytest.approx(-math.radians(60))
        assert grid.azimuths[-1] == pytest.approx(math.radians(60))
        assert grid.azimuths[30] == pytest.approx(0.0)

    def test_nearest_index(self):
        grid = AngleGrid(np.array([-0.5, 0.0, 0.5]))
        assert grid.nearest_index(0.1) == 1
        assert grid.nearest_index(-0.6) == 0
        assert grid.nearest_index(10.0) == 2

    def test_needs_two_angles(self):
        with pytest.raises(ServiceError):
            AngleGrid(np.array([0.0]))


@pytest.fixture()
def sensing_setup(simulator, ap, env, sites):
    """A 20x20 sensing panel and its channel model over the bedroom."""
    from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

    panel = SurfacePanel(
        "s1",
        GENERIC_PROGRAMMABLE_28,
        20,
        20,
        sites.single_surface_center,
        sites.single_surface_normal,
    )
    points = env.room("bedroom").grid(0.8)
    model = simulator.build(ap, points, [panel])
    estimator = AoAEstimator(
        panel,
        surface_illumination(model, "s1"),
        AngleGrid.uniform(count=61),
        FREQ,
    )
    return panel, model, estimator


class TestAoAEstimator:
    def test_true_azimuth_geometry(self, sensing_setup):
        panel, _, est = sensing_setup
        ahead = panel.center + 2.0 * panel.normal
        assert est.true_azimuth(ahead) == pytest.approx(0.0, abs=1e-9)
        u, _ = panel.plane_axes()
        side = panel.center + 2.0 * panel.normal + 1.0 * u
        assert est.true_azimuth(side) == pytest.approx(math.atan2(1, 2))

    def test_steering_shape(self, sensing_setup):
        panel, _, est = sensing_setup
        expected = 61 * len(est.ranges_m)
        assert est.steering.shape == (expected, panel.num_elements)
        assert est.num_candidates == expected

    def test_candidate_index_mapping(self, sensing_setup):
        _, _, est = sensing_setup
        r = len(est.ranges_m)
        assert est.angle_index_of(0) == 0
        assert est.angle_index_of(r - 1) == 0
        assert est.angle_index_of(r) == 1

    def test_true_index_round_trip(self, sensing_setup):
        _, model, est = sensing_setup
        for point in model.points[:5]:
            idx = est.true_index(point)
            err = est.localization_error_m(point, idx)
            # Only angle-grid discretization error remains.
            rng_m = np.linalg.norm(point - est.panel.center)
            step = est.grid.azimuths[1] - est.grid.azimuths[0]
            assert err <= rng_m * step

    def test_spatial_info_preserving_config_localizes(self, sensing_setup, rng):
        """Conjugating the AP illumination makes the aperture look like
        a plain array — the legacy estimator nails every location."""
        panel, model, est = sensing_setup
        x = np.exp(-1j * np.angle(est.illumination))
        wavefronts = est.wavefront_map(model.surface_to_points["s1"])
        errors = []
        for k in range(model.num_points):
            idx, _ = est.estimate(wavefronts[k] * x)
            errors.append(est.localization_error_m(model.points[k], idx))
        assert np.median(errors) < 0.2

    def test_random_config_scrambles_wavefront(self, sensing_setup, rng):
        """A random configuration invalidates the estimator's spatial
        assumptions (the §2.1 effect)."""
        panel, model, est = sensing_setup
        good = np.exp(-1j * np.angle(est.illumination))
        bad = np.exp(1j * rng.uniform(0, 2 * np.pi, panel.num_elements))
        wavefronts = est.wavefront_map(model.surface_to_points["s1"])

        def median_error(x):
            errs = []
            for k in range(model.num_points):
                idx, _ = est.estimate(wavefronts[k] * x)
                errs.append(est.localization_error_m(model.points[k], idx))
            return float(np.median(errs))

        assert median_error(bad) > 3 * median_error(good)

    def test_estimate_spectrum_normalized(self, sensing_setup, rng):
        panel, model, est = sensing_setup
        z = rng.normal(size=panel.num_elements) + 1j * rng.normal(
            size=panel.num_elements
        )
        idx, spectrum = est.estimate(z)
        assert 0 <= idx < est.num_candidates
        assert np.all(spectrum >= 0) and np.all(spectrum <= 1.0 + 1e-9)

    def test_validation(self, sensing_setup):
        panel, _, _ = sensing_setup
        grid = AngleGrid.uniform(count=5)
        with pytest.raises(ServiceError):
            AoAEstimator(panel, np.zeros(3), grid, FREQ)
        with pytest.raises(ServiceError):
            AoAEstimator(
                panel, np.zeros(panel.num_elements), grid, FREQ, ranges_m=()
            )
        est = AoAEstimator(panel, np.ones(panel.num_elements), grid, FREQ)
        with pytest.raises(ServiceError):
            est.wavefront_map(np.zeros((4, 7)))


class TestMeasurement:
    def test_errors_shape_and_cap(self, sensing_setup, budget, rng):
        panel, model, est = sensing_setup
        x = np.exp(1j * rng.uniform(0, 2 * np.pi, panel.num_elements))
        errors = measure_localization_errors(
            model, "s1", {"s1": x}, est, budget, rng=rng, trials=2, cap_m=2.0
        )
        assert errors.shape == (model.num_points,)
        assert np.all(errors >= 0.0) and np.all(errors <= 2.0)

    def test_coverage_focus_beats_random_near_target_only(
        self, sensing_setup, budget, rng, ap
    ):
        """A focused config localizes its focal point but degrades the
        rest of the room relative to a spatial-info-preserving config."""
        panel, model, est = sensing_setup
        good = np.exp(-1j * np.angle(est.illumination))
        target = model.points[len(model.points) // 2]
        focus = focus_configuration(
            panel.element_positions(), panel.shape, ap.centroid, target, FREQ
        ).coefficients().reshape(-1)
        errs_focus = measure_localization_errors(
            model, "s1", {"s1": focus}, est, budget, rng=rng, trials=2
        )
        errs_good = measure_localization_errors(
            model, "s1", {"s1": good}, est, budget, rng=rng, trials=2
        )
        assert errs_focus.mean() > errs_good.mean()

    def test_element_noise_power_scales(self, budget):
        low = element_noise_power(budget, pilot_gain_db=30.0)
        high = element_noise_power(budget, pilot_gain_db=10.0)
        assert high == pytest.approx(low * 100.0)


class TestObjective:
    def test_gradient_matches_finite_differences(self, sensing_setup, budget, rng):
        _, model, est = sensing_setup
        obj = localization_objective(
            model, "s1", est, point_indices=range(4), budget=budget
        )
        phases = rng.uniform(0, 2 * np.pi, obj.dim)
        value, grad = obj.value_and_gradient(phases)
        fd = FiniteDifferenceObjective(obj.value, obj.dim, step=1e-6)
        fd_value, fd_grad = fd.value_and_gradient(phases)
        assert value == pytest.approx(fd_value)
        scale = np.abs(fd_grad).max()
        assert np.allclose(grad, fd_grad, rtol=1e-4, atol=1e-4 * scale)

    def test_loss_lower_for_spatial_info_preserving_config(
        self, sensing_setup, budget
    ):
        _, model, est = sensing_setup
        obj = localization_objective(model, "s1", est, budget=budget)
        good = np.mod(-np.angle(est.illumination), 2 * np.pi)
        rng = np.random.default_rng(5)
        bad = rng.uniform(0, 2 * np.pi, obj.dim)
        assert obj.value(good) < obj.value(bad)

    def test_optimization_reduces_measured_error(
        self, sensing_setup, budget, rng
    ):
        from repro.orchestrator import Adam

        panel, model, est = sensing_setup
        obj = localization_objective(model, "s1", est, budget=budget)
        x0 = rng.uniform(0, 2 * np.pi, obj.dim)
        result = Adam(max_iterations=80, learning_rate=0.2).optimize(obj, x0)
        before = measure_localization_errors(
            model,
            "s1",
            {"s1": np.exp(1j * x0)},
            est,
            budget,
            rng=np.random.default_rng(1),
            trials=2,
        )
        after = measure_localization_errors(
            model,
            "s1",
            {"s1": np.exp(1j * result.phases)},
            est,
            budget,
            rng=np.random.default_rng(1),
            trials=2,
        )
        assert after.mean() < before.mean()

    def test_validation(self, sensing_setup, rng):
        panel, model, est = sensing_setup
        w = est.wavefront_map(model.surface_to_points["s1"])
        with pytest.raises(OptimizationError):
            SurfaceAoAObjective(w[0], est, [0])
        with pytest.raises(OptimizationError):
            SurfaceAoAObjective(w, est, [0, 1])
        with pytest.raises(OptimizationError):
            SurfaceAoAObjective(w, est, [10 ** 6] * w.shape[0])
        with pytest.raises(OptimizationError):
            SurfaceAoAObjective(w, est, [0] * w.shape[0], beta=0.0)
