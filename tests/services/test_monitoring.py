"""Channel monitor: anomaly detection and health reporting."""

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.services import ChannelMonitor


def test_no_anomaly_on_stable_signal():
    monitor = ChannelMonitor(drop_threshold_db=10.0)
    for t in range(5):
        anomalies = monitor.observe(float(t), [30.0, 28.0, 25.0])
        assert anomalies == []


def test_detects_sudden_drop():
    monitor = ChannelMonitor(drop_threshold_db=10.0)
    for t in range(3):
        monitor.observe(float(t), [30.0, 28.0])
    anomalies = monitor.observe(3.0, [30.0, 12.0])
    assert len(anomalies) == 1
    assert anomalies[0].point_index == 1
    assert anomalies[0].drop_db == pytest.approx(16.0)


def test_baseline_is_rolling_median():
    monitor = ChannelMonitor(baseline_window=3)
    for t, snr in enumerate([10.0, 20.0, 30.0, 40.0]):
        monitor.observe(float(t), [snr])
    assert monitor.baseline()[0] == pytest.approx(30.0)


def test_gradual_drift_not_flagged():
    monitor = ChannelMonitor(drop_threshold_db=10.0, baseline_window=2)
    snr = 40.0
    for t in range(20):
        snr -= 2.0  # 2 dB per step, below the 10 dB threshold vs baseline
        assert monitor.observe(float(t), [snr]) == []


def test_health_report():
    monitor = ChannelMonitor(drop_threshold_db=5.0)
    monitor.observe(0.0, [30.0, 30.0])
    monitor.observe(1.0, [30.0, 5.0])
    report = monitor.health_report(floor_snr_db=10.0)
    assert report["observations"] == 2
    assert report["anomaly_count"] == 1
    assert report["healthy_fraction"] == pytest.approx(0.75)
    assert report["worst_snr_db"] == 5.0


def test_size_change_rejected():
    monitor = ChannelMonitor()
    monitor.observe(0.0, [1.0, 2.0])
    with pytest.raises(ServiceError):
        monitor.observe(1.0, [1.0])


def test_empty_report_rejected():
    with pytest.raises(ServiceError):
        ChannelMonitor().health_report()


def test_validation():
    with pytest.raises(ServiceError):
        ChannelMonitor(drop_threshold_db=0.0)
    with pytest.raises(ServiceError):
        ChannelMonitor(baseline_window=0)
