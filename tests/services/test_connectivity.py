"""Connectivity service helpers."""

import numpy as np
import pytest

from repro.channel import LinearChannelForm
from repro.em import LinkBudget
from repro.services import (
    CoverageReport,
    coverage_objective,
    link_objective,
    required_snr_for_throughput,
    rss_map_dbm,
    snr_map_db,
)


@pytest.fixture()
def form(rng):
    coeffs = 1e-4 * (
        rng.normal(size=(5, 2, 8)) + 1j * rng.normal(size=(5, 2, 8))
    )
    offset = 1e-5 * (rng.normal(size=(5, 2)) + 1j * rng.normal(size=(5, 2)))
    return LinearChannelForm("s", coeffs, offset)


def test_coverage_objective_dims(form):
    obj = coverage_objective(form)
    assert obj.dim == 8


def test_link_objective_ignores_other_points(form, rng):
    obj = link_objective(form, point_index=2)
    phases = rng.uniform(0, 2 * np.pi, 8)
    # Perturbing would change coverage everywhere, but the link
    # objective's value must equal single-point capacity.
    snrs = obj.snr_db(phases)
    value = obj.value(phases)
    budget = LinkBudget()
    expected = -np.log2(1.0 + 10 ** (snrs[2] / 10.0))
    assert value == pytest.approx(expected, rel=1e-6)


def test_required_snr_monotone_in_rate():
    budget = LinkBudget(bandwidth_hz=400e6)
    low = required_snr_for_throughput(50e6, budget)
    high = required_snr_for_throughput(800e6, budget)
    assert high > low


def test_coverage_report():
    report = CoverageReport.from_snrs([10, 20, 30, 40], target_snr_db=25.0)
    assert report.median_snr_db == pytest.approx(25.0)
    assert report.min_snr_db == 10
    assert report.max_snr_db == 40
    assert report.fraction_above_target == pytest.approx(0.5)
    with pytest.raises(ValueError):
        CoverageReport.from_snrs([])


def test_snr_and_rss_maps_consistent(simulator, ap, bedroom_points, single_prog, budget):
    model = simulator.build(ap, bedroom_points, [single_prog])
    configs = {"s1": single_prog.configuration.coefficients().reshape(-1)}
    snrs = snr_map_db(model, configs, budget)
    rss = rss_map_dbm(model, configs, budget)
    assert snrs.shape == rss.shape == (bedroom_points.shape[0],)
    # RSS - noise floor == SNR wherever the SNR floor isn't clamped.
    unclamped = snrs > -39.9
    assert np.allclose(
        rss[unclamped] - budget.noise_floor_dbm, snrs[unclamped], atol=1e-6
    )
