"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "SurfOS" in out
    assert "AutoMS" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "mmWall" in out and "LAIA" in out


def test_fig6(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "VR gaming" in out
    assert "matches expected: True" in out


def test_translate(capsys):
    assert main(["translate", "charge my phone please"]) == 0
    out = capsys.readouterr().out
    assert "init_powering('phone'" in out


def test_translate_not_understood(capsys):
    assert main(["translate", "what a lovely day"]) == 1


def test_recommend(capsys):
    assert main(["recommend", "passive surface for 60 GHz"]) == 0
    out = capsys.readouterr().out
    assert "AutoMS" in out


def test_trace_runs_and_report_round_trips(tmp_path, capsys):
    jsonl = str(tmp_path / "trace.jsonl")
    assert (
        main(["trace", "--iterations", "5", "--rounds", "1", "--jsonl", jsonl])
        == 0
    )
    out = capsys.readouterr().out
    assert "Telemetry: spans" in out
    assert "reoptimize/channel-build" in out
    assert "total_s" in out

    assert main(["trace", "--report", jsonl]) == 0
    out = capsys.readouterr().out
    assert "Telemetry report: spans" in out
    assert "reoptimize/push" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_mobility_runs_and_writes_artifacts(tmp_path, capsys):
    jsonl = str(tmp_path / "mob.jsonl")
    json_path = str(tmp_path / "mob.json")
    assert (
        main(
            [
                "mobility",
                "--steps",
                "5",
                "--panel-size",
                "6",
                "--jsonl",
                jsonl,
                "--json",
                json_path,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "prefetch hit rate" in out
    assert "scenario results written to" in out
    assert "sim-only event log written to" in out

    import json as _json

    summary = _json.loads(open(json_path).read())
    assert summary["reactions"] > 0
    assert summary["leg_cache_full_purges"] == 0
    assert open(jsonl).read().count("\n") > 0


def test_mobility_rejects_unknown_scene():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["mobility", "--scene", "penthouse"])


def test_fleet_scene_flag():
    args = build_parser().parse_args(["fleet", "--scene", "office"])
    assert args.scene == "office"
    assert build_parser().parse_args(["fleet"]).scene == "two-room"
