"""Unit tests for the telemetry substrate (spans, counters, export)."""

import json

import pytest

from repro.core.errors import SurfOSError
from repro.telemetry import (
    NULL_SPAN,
    Telemetry,
    load_jsonl,
    render_report,
)


class TestSpans:
    def test_span_records_wall_duration(self):
        t = Telemetry()
        with t.span("work") as span:
            pass
        assert span.wall_duration_s >= 0.0
        stats = t.snapshot().spans["work"]
        assert stats.count == 1
        assert stats.wall_total_s == pytest.approx(span.wall_duration_s)

    def test_nested_spans_get_slash_paths(self):
        t = Telemetry()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        spans = t.snapshot().spans
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer/inner"].count == 2
        assert spans["outer"].count == 1

    def test_span_attrs_land_in_event_log(self):
        t = Telemetry()
        with t.span("push", surfaces=3) as span:
            span.set(applied=2)
        (event,) = t.events("push")
        assert event.kind == "span"
        assert event.attrs == {"surfaces": 3, "applied": 2}

    def test_sim_clock_timing(self):
        t = Telemetry()
        clock = {"now": 10.0}
        t.bind_sim_clock(lambda: clock["now"])
        with t.span("settle") as span:
            clock["now"] += 2.5
        assert span.sim_duration_s == pytest.approx(2.5)
        assert t.snapshot().spans["settle"].sim_total_s == pytest.approx(2.5)

    def test_sim_clock_first_binding_wins(self):
        t = Telemetry()
        t.bind_sim_clock(lambda: 1.0)
        t.bind_sim_clock(lambda: 99.0)
        with t.span("x") as span:
            pass
        assert span.sim_start_s == 1.0
        t.bind_sim_clock(lambda: 99.0, force=True)
        with t.span("y") as span:
            pass
        assert span.sim_start_s == 99.0

    def test_stats_survive_event_log_rotation(self):
        t = Telemetry(max_events=4)
        for _ in range(10):
            with t.span("tick"):
                pass
        snap = t.snapshot()
        assert snap.spans["tick"].count == 10
        assert snap.events_logged == 4
        assert snap.events_dropped == 6


class TestCountersAndEvents:
    def test_counter_accumulates_and_returns_total(self):
        t = Telemetry()
        assert t.counter("hits") == 1
        assert t.counter("hits", 4) == 5
        assert t.get_counter("hits") == 5
        assert t.get_counter("absent") == 0
        assert t.counters == {"hits": 5}

    def test_gauge_keeps_latest_value(self):
        t = Telemetry()
        t.gauge("settle_s", 0.1)
        t.gauge("settle_s", 0.3)
        assert t.gauges == {"settle_s": 0.3}

    def test_point_events_filterable_by_name(self):
        t = Telemetry()
        t.event("reaction", latency_s=0.01)
        t.event("other")
        t.event("reaction", latency_s=0.02)
        events = t.events("reaction")
        assert [e.attrs["latency_s"] for e in events] == [0.01, 0.02]
        assert len(t.events()) == 3

    def test_event_inside_span_inherits_path(self):
        t = Telemetry()
        with t.span("daemon"):
            t.event("reaction")
        (event,) = t.events("reaction")
        assert event.path == "daemon/reaction"

    def test_reset_clears_everything(self):
        t = Telemetry()
        with t.span("a"):
            t.counter("c")
            t.gauge("g", 1.0)
        t.reset()
        snap = t.snapshot()
        assert not snap.spans and not snap.counters and not snap.gauges
        assert snap.events_logged == 0


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        t = Telemetry(enabled=False)
        span = t.span("anything", attr=1)
        assert span is NULL_SPAN
        with span as s:
            assert s.set(more=2) is s
        assert span.wall_duration_s == 0.0
        assert t.snapshot().spans == {}

    def test_disabled_counters_and_events_record_nothing(self):
        t = Telemetry(enabled=False)
        assert t.counter("hits") == 0
        t.event("x")
        t.gauge("g", 1.0)
        snap = t.snapshot()
        assert not snap.counters and not snap.gauges
        assert snap.events_logged == 0

    def test_enable_resumes_collection(self):
        t = Telemetry(enabled=False)
        t.counter("hits")
        t.enable()
        assert t.counter("hits") == 1
        t.disable()
        assert t.counter("hits") == 1


class TestExportAndReport:
    def test_export_round_trip(self, tmp_path):
        t = Telemetry()
        with t.span("reoptimize"):
            with t.span("push"):
                pass
        t.counter("pushes", 2)
        t.event("reaction", latency_s=0.01)
        path = str(tmp_path / "trace.jsonl")
        text = t.export_jsonl(path)
        assert (tmp_path / "trace.jsonl").read_text() == text

        records = load_jsonl(path)
        # Trailing snapshot record carries the aggregates.
        assert records[-1]["kind"] == "snapshot"
        assert records[-1]["counters"] == {"pushes": 2}
        kinds = [r["kind"] for r in records[:-1]]
        assert "span" in kinds and "event" in kinds

        report = render_report(records)
        assert "reoptimize/push" in report
        assert "pushes" in report
        assert "reaction" in report

    def test_report_rebuilds_spans_without_snapshot_line(self, tmp_path):
        t = Telemetry()
        with t.span("alpha"):
            pass
        records = load_jsonl_text(tmp_path, t.export_jsonl())
        no_snapshot = [r for r in records if r["kind"] != "snapshot"]
        assert "alpha" in render_report(no_snapshot)

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        with pytest.raises(SurfOSError):
            load_jsonl(str(bad))

    def test_load_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        with pytest.raises(SurfOSError):
            load_jsonl(str(empty))

    def test_summary_renders_tables(self):
        t = Telemetry()
        with t.span("work"):
            pass
        t.counter("hits")
        t.gauge("level", 0.5)
        summary = t.summary()
        assert "Telemetry: spans" in summary
        assert "Telemetry: counters" in summary
        assert "Telemetry: gauges" in summary

    def test_empty_summary(self):
        assert Telemetry().summary() == "(no telemetry recorded)"


def load_jsonl_text(tmp_path, text):
    path = tmp_path / "roundtrip.jsonl"
    path.write_text(text)
    return load_jsonl(str(path))


def test_snapshot_as_dict_is_json_serializable():
    t = Telemetry()
    with t.span("a", n=1):
        t.counter("c")
    json.dumps(t.snapshot().as_dict())
