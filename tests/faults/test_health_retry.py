"""Manager health tracking: retries, backoff determinism, quarantine."""

import numpy as np
import pytest

from repro.core import OperationStatus, SurfaceConfiguration
from repro.faults import FaultInjector
from repro.geometry import vec3
from repro.hwmgr import HardwareManager
from repro.hwmgr.health import HealthStatus, RetryPolicy
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel
from repro.telemetry import Telemetry


def make_panel(pid="s1", rows=4, cols=4):
    return SurfacePanel(
        pid, GENERIC_PROGRAMMABLE_28, rows, cols, vec3(0, 0, 1.5), vec3(0, -1, 0)
    )


def make_manager(seed=0, drop=0.5, timeout=0.0, **policy_kw):
    manager = HardwareManager(
        telemetry=Telemetry(),
        fault_injector=FaultInjector(seed=seed),
        retry_policy=RetryPolicy(seed=seed, **policy_kw),
    )
    manager.register_surface(make_panel())
    manager.faults.lossy_link(
        "s1", drop_probability=drop, timeout_probability=timeout
    )
    manager.tick_faults(0.0)
    return manager


def push_many(manager, count, rows=4, cols=4):
    rng = np.random.default_rng(0)
    results = []
    for i in range(count):
        cfg = SurfaceConfiguration.random(rows, cols, rng=rng)
        results.append(
            manager.push_configuration("s1", cfg, now=float(i), name=f"c{i}")
        )
    return results


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(quarantine_after=0)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, backoff_factor=2.0, jitter_fraction=0.0
        )
        rng = policy.make_rng()
        assert policy.backoff_s(1, rng) == pytest.approx(0.01)
        assert policy.backoff_s(2, rng) == pytest.approx(0.02)
        assert policy.backoff_s(3, rng) == pytest.approx(0.04)


class TestRetryDeterminism:
    def test_same_seed_identical_retry_schedules(self):
        runs = []
        for _ in range(2):
            manager = make_manager(seed=5, drop=0.5)
            results = push_many(manager, 10)
            retries = [
                (e.attrs["attempt"], e.attrs["backoff_s"])
                for e in manager.telemetry.events("hwmgr.retry")
            ]
            statuses = [r.status for r in results]
            health = manager.health("s1")
            runs.append(
                (
                    retries,
                    statuses,
                    health.status,
                    health.retries,
                    health.total_failures,
                )
            )
        assert runs[0] == runs[1]
        assert runs[0][0]  # some retries actually happened

    def test_retries_counted_in_telemetry(self):
        manager = make_manager(seed=5, drop=0.5)
        push_many(manager, 10)
        counters = manager.telemetry.counters
        assert counters.get("hwmgr.retries", 0) == manager.health("s1").retries
        assert counters["hwmgr.retries"] > 0

    def test_retried_status_and_attempts(self):
        manager = make_manager(seed=5, drop=0.5)
        results = push_many(manager, 10)
        retried = [r for r in results if r.status is OperationStatus.RETRIED]
        assert retried  # p=0.5: some pushes needed a retry
        assert all(r.attempts > 1 for r in retried)
        assert all(r.ready_at is not None for r in retried)


class TestQuarantine:
    def test_repeat_failures_trip_quarantine(self):
        manager = make_manager(
            seed=0, drop=1.0, max_attempts=2, quarantine_after=3
        )
        degradations = []
        manager.on_degraded = lambda sid, reason: degradations.append(
            (sid, reason)
        )
        results = push_many(manager, 5)
        health = manager.health("s1")
        assert health.status is HealthStatus.QUARANTINED
        assert degradations == [("s1", "quarantined")]
        assert manager.telemetry.counters["hwmgr.quarantined"] == 1
        # First three operations fail outright, the rest are rejected
        # without touching the link.
        assert [r.status for r in results[:3]] == [OperationStatus.FAILED] * 3
        assert [r.status for r in results[3:]] == [OperationStatus.REJECTED] * 2
        assert results[3].attempts == 0

    def test_quarantined_surface_masked_from_operational(self):
        manager = make_manager(seed=0, drop=1.0, max_attempts=1, quarantine_after=1)
        push_many(manager, 1)
        assert manager.operational_panels() == []
        assert manager.panels() != []  # still mounted

    def test_success_resets_streak(self):
        manager = make_manager(seed=0, drop=0.5, quarantine_after=3)
        push_many(manager, 10)
        health = manager.health("s1")
        # With p=0.5 drops and 4 attempts per push, operations succeed
        # often enough that the streak never reaches 3.
        assert health.status is HealthStatus.HEALTHY
        assert health.consecutive_failures < 3

    def test_reinstate(self):
        manager = make_manager(seed=0, drop=1.0, max_attempts=1, quarantine_after=1)
        push_many(manager, 1)
        assert manager.health("s1").status is HealthStatus.QUARANTINED
        manager.reinstate("s1")
        assert manager.health("s1").status is HealthStatus.HEALTHY
        assert manager.health("s1").consecutive_failures == 0

    def test_operator_quarantine(self):
        manager = HardwareManager()
        manager.register_surface(make_panel())
        manager.quarantine("s1", reason="maintenance")
        assert manager.health("s1").status is HealthStatus.QUARANTINED
        result = manager.push_configuration(
            "s1", SurfaceConfiguration.zeros(4, 4), now=0.0
        )
        assert result.status is OperationStatus.REJECTED
        assert not result.ok


class TestTickFaults:
    def test_panel_death_updates_health_and_notifies(self):
        manager = HardwareManager(fault_injector=FaultInjector(seed=0))
        manager.register_surface(make_panel())
        seen = []
        manager.on_degraded = lambda sid, reason: seen.append((sid, reason))
        manager.faults.kill_panel("s1", at_time=1.0)
        manager.tick_faults(0.5)
        assert manager.health("s1").status is HealthStatus.HEALTHY
        manager.tick_faults(1.5)
        assert manager.health("s1").status is HealthStatus.DEAD
        assert seen == [("s1", "panel-dead")]
        assert np.all(manager.panel("s1").configuration.amplitudes == 0.0)

    def test_element_failure_marks_degraded(self):
        manager = HardwareManager(fault_injector=FaultInjector(seed=0))
        manager.register_surface(make_panel())
        manager.faults.fail_elements("s1", fraction=0.25)
        manager.tick_faults(0.0)
        assert manager.health("s1").status is HealthStatus.DEGRADED
        assert manager.health("s1").operational
        assert manager.telemetry.counters["faults.injected"] == 1

    def test_commit_reapplies_corruption(self):
        manager = HardwareManager(fault_injector=FaultInjector(seed=0))
        manager.register_surface(make_panel())
        manager.faults.fail_elements("s1", fraction=0.25)
        manager.tick_faults(0.0)
        dark_before = manager.panel("s1").configuration.amplitudes == 0.0
        assert dark_before.any()
        # A degraded surface still takes writes; committing the clean
        # intent must not resurrect the dead elements.
        result = manager.push_configuration(
            "s1", SurfaceConfiguration.zeros(4, 4), now=0.0
        )
        assert result.ok
        manager.commit_all(now=result.ready_at)
        dark_after = manager.panel("s1").configuration.amplitudes == 0.0
        np.testing.assert_array_equal(dark_before, dark_after)

    def test_no_injector_is_inert(self):
        manager = HardwareManager()
        manager.register_surface(make_panel())
        assert manager.tick_faults(1.0) == []
        assert manager.faults is None
