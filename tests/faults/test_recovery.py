"""The scripted degraded-mode scenario: 2 of 5 panels die mid-run.

The acceptance test for the fault subsystem: the daemon must notice the
deaths, re-optimize around them with zero unhandled exceptions, and land
the post-recovery objective within the stated bound of the pre-fault
value — deterministically per seed.
"""

import numpy as np
import pytest

from repro.experiments import degradation
from repro.hwmgr.health import HealthStatus
from repro.runtime import SurfaceDegraded


@pytest.fixture(scope="module")
def outcome():
    """One full run, shared across assertions (it carries the system)."""
    system = degradation.build_system(seed=0)
    result = degradation.run(seed=0, system=system)
    return system, result


class TestRecovery:
    def test_recovers_within_stated_bound(self, outcome):
        _, result = outcome
        assert result.faults_injected == 2
        assert result.degraded_median_snr_db < result.pre_fault_median_snr_db
        assert result.recovered_median_snr_db > result.degraded_median_snr_db
        assert result.recovery_gap_db <= degradation.RECOVERY_BOUND_DB
        assert result.recovered_within_bound

    def test_zero_unhandled_exceptions(self, outcome):
        system, result = outcome
        assert result.reoptimize_failures == 0
        assert system.daemon.reoptimize_failures == 0

    def test_daemon_reacted_to_surface_degradation(self, outcome):
        system, _ = outcome
        triggers = [r.trigger for r in system.daemon.reactions]
        assert "surface-degraded" in triggers
        degraded_events = system.daemon.bus.events_of(SurfaceDegraded)
        assert sorted({e.surface_id for e in degraded_events}) == [
            "rs-2",
            "rs-4",
        ]
        assert all(e.reason == "panel-dead" for e in degraded_events)

    def test_dead_panels_masked_but_still_mounted(self, outcome):
        system, _ = outcome
        report = system.hardware.health_report()
        assert report["rs-2"].status is HealthStatus.DEAD
        assert report["rs-4"].status is HealthStatus.DEAD
        survivors = {p.panel_id for p in system.hardware.operational_panels()}
        assert survivors == {"rs-1", "rs-3", "rs-5"}
        assert len(system.hardware.panels()) == 5
        for sid in ("rs-2", "rs-4"):
            config = system.hardware.panel(sid).configuration
            assert np.all(config.amplitudes == 0.0)

    def test_degradation_span_recorded(self, outcome):
        system, _ = outcome
        spans = [
            e
            for e in system.telemetry.events()
            if e.kind == "span" and e.name == "degraded-recovery"
        ]
        assert spans
        assert system.telemetry.counters["faults.injected"] == 2

    def test_render_mentions_verdict(self, outcome):
        _, result = outcome
        text = result.render()
        assert "within bound" in text
        assert "rs-2" in text and "rs-4" in text


class TestDeterminism:
    def test_same_seed_identical_outcome(self, outcome):
        _, first = outcome
        second = degradation.run(seed=0)
        assert second.pre_fault_median_snr_db == first.pre_fault_median_snr_db
        assert second.degraded_median_snr_db == first.degraded_median_snr_db
        assert (
            second.recovered_median_snr_db == first.recovered_median_snr_db
        )
        assert second.faults_injected == first.faults_injected

    def test_sim_only_export_is_reproducible(self):
        exports = []
        for _ in range(2):
            system = degradation.build_system(seed=3)
            degradation.run(seed=3, system=system)
            exports.append(system.telemetry.export_jsonl(sim_only=True))
        assert exports[0] == exports[1]
        assert "wall" not in exports[0]

    def test_run_too_short_rejected(self):
        with pytest.raises(ValueError):
            degradation.run(seed=0, steps=1, dt=0.1)
