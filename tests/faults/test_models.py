"""Fault spec validation and identity."""

import math

import pytest

from repro.faults import (
    ControlLinkFault,
    ElementFailure,
    PanelDeath,
    PhaseDrift,
)


class TestSpecValidation:
    def test_element_failure_fraction_bounds(self):
        ElementFailure("s1", fraction=1.0)
        with pytest.raises(ValueError):
            ElementFailure("s1", fraction=0.0)
        with pytest.raises(ValueError):
            ElementFailure("s1", fraction=1.5)

    def test_element_failure_mode(self):
        ElementFailure("s1", mode="stuck")
        with pytest.raises(ValueError):
            ElementFailure("s1", mode="loose")

    def test_phase_drift_sigma(self):
        with pytest.raises(ValueError):
            PhaseDrift("s1", sigma_rad_per_sqrt_s=0.0)

    def test_link_probabilities(self):
        ControlLinkFault("s1", drop_probability=0.5, timeout_probability=0.5)
        with pytest.raises(ValueError):
            ControlLinkFault("s1", drop_probability=0.7, timeout_probability=0.4)
        with pytest.raises(ValueError):
            ControlLinkFault("s1", drop_probability=-0.1)

    def test_link_window(self):
        assert ControlLinkFault("s1").until == math.inf
        with pytest.raises(ValueError):
            ControlLinkFault("s1", at_time=2.0, until=1.0)

    def test_kind_names(self):
        assert PanelDeath("s1").kind == "PanelDeath"
        assert ElementFailure("s1").kind == "ElementFailure"
        assert PhaseDrift("s1").kind == "PhaseDrift"
        assert ControlLinkFault("s1").kind == "ControlLinkFault"

    def test_specs_are_frozen(self):
        spec = PanelDeath("s1", at_time=3.0)
        with pytest.raises(Exception):
            spec.at_time = 5.0
