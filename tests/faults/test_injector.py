"""FaultInjector: determinism, corruption, link behavior."""

import numpy as np
import pytest

from repro.core import (
    HardwareTimeoutError,
    SurfaceConfiguration,
    TransientHardwareError,
)
from repro.faults import FaultInjector
from repro.geometry import vec3
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel


def make_panel(pid="s1", rows=6, cols=6):
    return SurfacePanel(
        pid, GENERIC_PROGRAMMABLE_28, rows, cols, vec3(0, 0, 1.5), vec3(0, -1, 0)
    )


def panels(*ps):
    return {p.panel_id: p for p in ps}


class TestScheduling:
    def test_activation_respects_time(self):
        panel = make_panel()
        inj = FaultInjector(seed=0)
        inj.kill_panel("s1", at_time=2.0)
        assert inj.pending_count() == 1
        assert inj.advance(1.0, panels(panel)) == []
        assert not inj.is_dead("s1")
        activated = inj.advance(2.5, panels(panel))
        assert [f.kind for f in activated] == ["PanelDeath"]
        assert inj.is_dead("s1")
        assert inj.pending_count() == 0
        assert len(inj.history) == 1

    def test_unknown_surface_spec_dropped(self):
        inj = FaultInjector(seed=0)
        inj.fail_elements("ghost", fraction=0.5)
        assert inj.advance(1.0, panels(make_panel())) == []


class TestDeterminism:
    def test_same_seed_same_element_masks(self):
        results = []
        for _ in range(2):
            panel = make_panel()
            inj = FaultInjector(seed=42)
            inj.fail_elements("s1", fraction=0.25)
            inj.advance(0.0, panels(panel))
            corrupted = inj.corrupt("s1", panel.configuration)
            results.append(corrupted.amplitudes.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_different_seeds_differ(self):
        masks = []
        for seed in (0, 1):
            panel = make_panel(rows=10, cols=10)
            inj = FaultInjector(seed=seed)
            inj.fail_elements("s1", fraction=0.3)
            inj.advance(0.0, panels(panel))
            masks.append(
                inj.corrupt("s1", panel.configuration).amplitudes.copy()
            )
        assert not np.array_equal(masks[0], masks[1])

    def test_same_seed_same_drift(self):
        offsets = []
        for _ in range(2):
            panel = make_panel()
            inj = FaultInjector(seed=7)
            inj.drift_phases("s1", sigma_rad_per_sqrt_s=0.1)
            inj.advance(0.0, panels(panel))
            inj.advance(1.0, panels(panel))
            inj.advance(2.0, panels(panel))
            offsets.append(
                inj.corrupt("s1", panel.configuration).phases.copy()
            )
        np.testing.assert_array_equal(offsets[0], offsets[1])

    def test_same_seed_same_link_outcomes(self):
        outcomes = []
        for _ in range(2):
            inj = FaultInjector(seed=3)
            inj.lossy_link("s1", drop_probability=0.5, timeout_probability=0.2)
            inj.advance(0.0, {})
            run = []
            for i in range(20):
                try:
                    run.append(("ok", inj.link_attempt("s1", float(i))))
                except HardwareTimeoutError:
                    run.append(("timeout", None))
                except TransientHardwareError:
                    run.append(("drop", None))
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        kinds = {k for k, _ in outcomes[0]}
        assert "drop" in kinds  # p=0.5 over 20 draws


class TestCorruption:
    def test_dead_panel_zeroes_amplitudes(self):
        panel = make_panel()
        inj = FaultInjector(seed=0)
        inj.kill_panel("s1")
        inj.advance(0.0, panels(panel))
        out = inj.corrupt("s1", panel.configuration)
        assert np.all(out.amplitudes == 0.0)
        assert inj.element_failure_fraction("s1") == 1.0

    def test_dead_elements_partial(self):
        panel = make_panel()
        inj = FaultInjector(seed=0)
        inj.fail_elements("s1", fraction=0.25)
        inj.advance(0.0, panels(panel))
        out = inj.corrupt("s1", panel.configuration)
        dead = int((out.amplitudes == 0.0).sum())
        assert dead == round(0.25 * panel.num_elements)
        assert inj.element_failure_fraction("s1") == pytest.approx(
            dead / panel.num_elements
        )

    def test_stuck_elements_freeze_phase(self):
        panel = make_panel()
        rng = np.random.default_rng(0)
        frozen_at = SurfaceConfiguration.random(6, 6, rng=rng)
        panel.actuate(frozen_at)
        inj = FaultInjector(seed=0)
        inj.fail_elements("s1", fraction=0.5, mode="stuck")
        inj.advance(0.0, panels(panel))
        intended = SurfaceConfiguration.zeros(6, 6)
        out = inj.corrupt("s1", intended)
        stuck = out.flat_phases() != 0.0
        # Stuck elements keep the (quantized) phases held at fault time.
        held = panel.configuration.flat_phases()
        assert stuck.any()
        np.testing.assert_allclose(
            out.flat_phases()[stuck], held[stuck]
        )

    def test_corrupt_is_idempotent_on_intent(self):
        panel = make_panel()
        inj = FaultInjector(seed=0)
        inj.drift_phases("s1", sigma_rad_per_sqrt_s=0.2)
        inj.advance(0.0, panels(panel))
        inj.advance(1.0, panels(panel))
        intended = panel.configuration
        once = inj.corrupt("s1", intended)
        twice = inj.corrupt("s1", intended)
        np.testing.assert_array_equal(once.phases, twice.phases)
        assert not np.array_equal(once.phases, intended.phases)

    def test_impaired_surfaces_listing(self):
        inj = FaultInjector(seed=0)
        p1, p2 = make_panel("a"), make_panel("b")
        inj.kill_panel("a")
        inj.drift_phases("b")
        inj.advance(0.0, panels(p1, p2))
        assert inj.impaired_surfaces() == ["a", "b"]


class TestLinkWindow:
    def test_link_inactive_outside_window(self):
        inj = FaultInjector(seed=0)
        inj.lossy_link("s1", drop_probability=1.0, at_time=1.0, until=2.0)
        inj.advance(1.0, {})  # activate the spec
        assert inj.link_attempt("s1", 0.5) == 0.0  # before window
        with pytest.raises(TransientHardwareError):
            inj.link_attempt("s1", 1.5)
        assert inj.link_attempt("s1", 2.5) == 0.0  # after window

    def test_timeout_carries_budget(self):
        inj = FaultInjector(seed=0)
        inj.lossy_link(
            "s1", drop_probability=0.0, timeout_probability=1.0, timeout_s=0.25
        )
        inj.advance(0.0, {})
        with pytest.raises(HardwareTimeoutError) as exc_info:
            inj.link_attempt("s1", 0.0)
        assert exc_info.value.timeout_s == 0.25

    def test_extra_delay_on_success(self):
        inj = FaultInjector(seed=0)
        inj.lossy_link("s1", drop_probability=0.0, extra_delay_s=0.03)
        inj.advance(0.0, {})
        assert inj.link_attempt("s1", 0.0) == 0.03
