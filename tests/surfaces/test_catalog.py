"""Table 1 catalog integrity against the paper."""

import math

import pytest

from repro.core import Granularity
from repro.core.units import ghz
from repro.surfaces import (
    CATALOG,
    TABLE1,
    OperationMode,
    SignalProperty,
    get_design,
    list_designs,
    table1_rows,
)

PAPER_ROWS = {
    # name: (band_lo_ghz, band_hi_ghz, property, mode, reconfigurable)
    "LAIA": (2.4, 2.4, SignalProperty.PHASE, OperationMode.TRANSMISSIVE, True),
    "RFocus": (2.4, 2.4, SignalProperty.AMPLITUDE, OperationMode.TRANSFLECTIVE, True),
    "LLAMA": (2.4, 2.4, SignalProperty.POLARIZATION, OperationMode.TRANSFLECTIVE, True),
    "LAVA": (2.4, 2.4, SignalProperty.AMPLITUDE, OperationMode.TRANSMISSIVE, True),
    "ScatterMIMO": (5.0, 5.0, SignalProperty.PHASE, OperationMode.REFLECTIVE, True),
    "RFlens": (5.0, 5.0, SignalProperty.PHASE, OperationMode.TRANSMISSIVE, True),
    "Diffract": (5.0, 5.0, SignalProperty.PHASE, OperationMode.TRANSMISSIVE, False),
    "Scrolls": (0.9, 6.0, SignalProperty.FREQUENCY, OperationMode.REFLECTIVE, True),
    "mmWall": (24.0, 24.0, SignalProperty.PHASE, OperationMode.TRANSFLECTIVE, True),
    "NR-Surface": (24.0, 24.0, SignalProperty.PHASE, OperationMode.REFLECTIVE, True),
    "PMSat": (20.0, 30.0, SignalProperty.PHASE, OperationMode.TRANSMISSIVE, False),
    "MilliMirror": (60.0, 60.0, SignalProperty.PHASE, OperationMode.REFLECTIVE, False),
    "AutoMS": (60.0, 60.0, SignalProperty.PHASE, OperationMode.REFLECTIVE, False),
}


def test_all_thirteen_rows_present():
    assert len(TABLE1) == 13
    assert set(CATALOG) == set(PAPER_ROWS)


@pytest.mark.parametrize("name", sorted(PAPER_ROWS))
def test_row_matches_paper(name):
    lo, hi, prop, mode, reconf = PAPER_ROWS[name]
    spec = CATALOG[name].spec
    assert spec.band_hz[0] == pytest.approx(ghz(lo))
    assert spec.band_hz[1] == pytest.approx(ghz(hi))
    assert prop in spec.properties
    assert spec.operation_mode is mode
    assert spec.reconfigurable is reconf


def test_passive_rows_have_infinite_control_delay():
    for entry in TABLE1:
        if not entry.spec.reconfigurable:
            assert math.isinf(entry.spec.control_delay_s)


def test_columnwise_rows():
    assert CATALOG["mmWall"].spec.granularity is Granularity.COLUMN
    assert CATALOG["NR-Surface"].spec.granularity is Granularity.COLUMN
    assert CATALOG["Scrolls"].spec.granularity is Granularity.ROW


def test_costs_descend_from_programmable_to_passive_mmwave():
    # The paper's point: programmable mmWave > $2/element, passive ≪ that.
    assert CATALOG["mmWall"].spec.cost_per_element_usd > 2.0
    assert CATALOG["NR-Surface"].spec.cost_per_element_usd > 2.0
    assert CATALOG["AutoMS"].spec.cost_per_element_usd < 0.001
    assert CATALOG["MilliMirror"].spec.cost_per_element_usd < 0.01


def test_get_design_and_listing():
    assert get_design("AutoMS").design == "AutoMS"
    assert get_design("generic-passive-28").is_passive
    assert "mmWall" in list_designs()
    with pytest.raises(KeyError):
        get_design("nonexistent")


def test_table1_rows_render():
    rows = table1_rows()
    assert len(rows) == 13
    assert rows[0][0] == "LAIA"
    assert all(len(r) == 5 for r in rows)
    # Scrolls band renders as a range.
    scrolls = next(r for r in rows if r[0] == "Scrolls")
    assert "0.9-6" in scrolls[1]
