"""SurfaceSpec validation and behavior."""

import math

import pytest

from repro.core import Granularity
from repro.core.units import ghz
from repro.surfaces import OperationMode, SignalProperty, SurfaceSpec


def make_spec(**overrides):
    base = dict(
        design="test",
        band_hz=(ghz(27), ghz(29)),
        properties=frozenset([SignalProperty.PHASE]),
        operation_mode=OperationMode.REFLECTIVE,
        reconfigurable=True,
    )
    base.update(overrides)
    return SurfaceSpec(**base)


def test_center_frequency_geometric_mean():
    spec = make_spec()
    assert spec.center_frequency_hz == pytest.approx(
        math.sqrt(ghz(27) * ghz(29))
    )


def test_element_pitch_half_wavelength():
    spec = make_spec()
    lam = 299_792_458.0 / spec.center_frequency_hz
    assert spec.element_pitch_m == pytest.approx(0.5 * lam)


def test_in_band():
    spec = make_spec()
    assert spec.in_band(ghz(28))
    assert not spec.in_band(ghz(60))


def test_efficiency_unity_in_band_rolls_off():
    spec = make_spec()
    assert spec.efficiency(ghz(28)) == pytest.approx(1.0)
    half_octave = spec.efficiency(ghz(29) * 1.414)
    octave = spec.efficiency(ghz(29) * 2.0)
    assert 0.0 < half_octave < 1.0
    assert octave == pytest.approx(0.0)


def test_supports():
    spec = make_spec()
    assert spec.supports(SignalProperty.PHASE)
    assert not spec.supports(SignalProperty.AMPLITUDE)


def test_passive_requires_infinite_delay():
    with pytest.raises(ValueError):
        make_spec(reconfigurable=False, control_delay_s=1e-3)
    spec = make_spec(reconfigurable=False, control_delay_s=math.inf)
    assert spec.is_passive


def test_through_loss_for_other_networks():
    reflective = make_spec(out_of_band_loss_db=10.0)
    assert reflective.through_loss_db(ghz(2.4)) == 10.0
    # In-band transmissive hardware passes signal.
    transmissive = make_spec(
        operation_mode=OperationMode.TRANSMISSIVE, out_of_band_loss_db=10.0
    )
    assert transmissive.through_loss_db(ghz(28)) == pytest.approx(1.0)
    assert transmissive.through_loss_db(ghz(2.4)) == 10.0


def test_operation_mode_flags():
    assert OperationMode.REFLECTIVE.reflects
    assert not OperationMode.REFLECTIVE.transmits
    assert OperationMode.TRANSFLECTIVE.reflects
    assert OperationMode.TRANSFLECTIVE.transmits


def test_validation_errors():
    with pytest.raises(ValueError):
        make_spec(band_hz=(ghz(29), ghz(27)))
    with pytest.raises(ValueError):
        make_spec(properties=frozenset())
    with pytest.raises(ValueError):
        make_spec(phase_bits=0)
    with pytest.raises(ValueError):
        make_spec(cost_per_element_usd=-1.0)
    with pytest.raises(ValueError):
        make_spec(max_stored_configurations=0)


def test_summary_row_format():
    row = make_spec(granularity=Granularity.COLUMN).summary_row()
    assert row[0] == "test"
    assert "GHz" in row[1]
    assert "Phase" in row[2]
    assert "column" in row[3]
