"""Panel geometry and configuration projection."""

import numpy as np
import pytest

from repro.core import ConfigurationError, Granularity, SurfaceConfiguration
from repro.surfaces import (
    GENERIC_COLUMNWISE_28,
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    SurfacePanel,
)
from repro.geometry import vec3


@pytest.fixture()
def panel():
    return SurfacePanel(
        "p", GENERIC_PROGRAMMABLE_28, 4, 6, vec3(0, 0, 1.5), vec3(0, -1, 0)
    )


def test_element_positions_shape_and_plane(panel):
    pos = panel.element_positions()
    assert pos.shape == (24, 3)
    # All elements lie in the panel plane (y = 0).
    assert np.allclose(pos[:, 1], 0.0)
    # Centered on the panel center.
    assert np.allclose(pos.mean(axis=0), [0, 0, 1.5])


def test_element_positions_row_major(panel):
    pos = panel.element_positions()
    pitch = panel.element_pitch_m
    # Consecutive elements within a row differ by one pitch along u.
    step = np.linalg.norm(pos[1] - pos[0])
    assert step == pytest.approx(pitch)
    # Row stride jumps along v.
    row_step = np.linalg.norm(pos[6] - pos[0])
    assert row_step == pytest.approx(pitch)


def test_plane_axes_orthonormal(panel):
    u, v = panel.plane_axes()
    assert np.dot(u, v) == pytest.approx(0.0, abs=1e-12)
    assert np.dot(u, panel.normal) == pytest.approx(0.0, abs=1e-12)
    assert np.linalg.norm(u) == pytest.approx(1.0)
    assert np.linalg.norm(v) == pytest.approx(1.0)


def test_dimensions_and_cost(panel):
    assert panel.num_elements == 24
    assert panel.width_m == pytest.approx(6 * panel.element_pitch_m)
    assert panel.height_m == pytest.approx(4 * panel.element_pitch_m)
    assert panel.area_m2 == pytest.approx(panel.width_m * panel.height_m)
    assert panel.cost_usd == pytest.approx(
        24 * GENERIC_PROGRAMMABLE_28.cost_per_element_usd
    )


def test_sees_half_space(panel):
    # Normal points toward -y: points with y < 0 are in front.
    assert panel.sees(vec3(0, -2, 1.5))
    assert not panel.sees(vec3(0, 2, 1.5))


def test_feasible_quantizes_phases(panel):
    cfg = SurfaceConfiguration.random(4, 6, rng=np.random.default_rng(0))
    projected = panel.feasible(cfg)
    levels = 2 ** GENERIC_PROGRAMMABLE_28.phase_bits
    assert len(np.unique(np.round(projected.phases, 9))) <= levels


def test_feasible_ties_columnwise():
    panel = SurfacePanel(
        "c", GENERIC_COLUMNWISE_28, 4, 6, vec3(0, 0, 1.5), vec3(0, -1, 0)
    )
    cfg = SurfaceConfiguration.random(4, 6, rng=np.random.default_rng(1))
    projected = panel.feasible(cfg)
    assert np.allclose(projected.phases, projected.phases[0:1, :])


def test_feasible_rejects_wrong_shape(panel):
    with pytest.raises(ConfigurationError):
        panel.feasible(SurfaceConfiguration.zeros(3, 3))


def test_actuate_stores_projection(panel):
    cfg = SurfaceConfiguration.random(4, 6, rng=np.random.default_rng(2))
    applied = panel.actuate(cfg)
    assert panel.configuration == applied


def test_degenerate_geometry_rejected():
    with pytest.raises(ConfigurationError):
        SurfacePanel(
            "bad", GENERIC_PASSIVE_28, 4, 4, vec3(0, 0, 0), vec3(0, 0, 1)
        )
    with pytest.raises(ConfigurationError):
        SurfacePanel("bad", GENERIC_PASSIVE_28, 0, 4, vec3(0, 0, 0), vec3(1, 0, 0))


def test_default_configuration_is_zero_phase(panel):
    assert np.allclose(panel.configuration.phases, 0.0)
    assert panel.configuration.name == "fabrication-default"
