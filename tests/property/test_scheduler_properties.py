"""Property-based tests: the allocator never overcommits capacity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AdmissionError
from repro.orchestrator import ResourceSlice
from repro.orchestrator.slices import SliceAllocator

N_ELEMENTS = 8
BAND = (27e9, 29e9)


@st.composite
def slice_requests(draw):
    mask = np.zeros(N_ELEMENTS, dtype=bool)
    start = draw(st.integers(0, N_ELEMENTS - 1))
    stop = draw(st.integers(start + 1, N_ELEMENTS))
    mask[start:stop] = True
    return ResourceSlice(
        surface_id="s1",
        element_mask=mask,
        band_hz=BAND,
        time_fraction=draw(
            st.sampled_from([0.1, 0.2, 0.25, 0.3, 0.5, 0.75, 1.0])
        ),
        shared_group=draw(st.sampled_from(["", "g"])),
    )


@given(st.lists(slice_requests(), min_size=1, max_size=12))
@settings(max_examples=100, deadline=None)
def test_time_axis_never_overcommitted(requests):
    """After any admission sequence, no element's non-shared time
    budget exceeds unity."""
    allocator = SliceAllocator()
    admitted = []
    for i, request in enumerate(requests):
        try:
            allocator.allocate(f"t{i}", [request])
            admitted.append(request)
        except AdmissionError:
            continue
    # Invariant: per element, the non-shared time fractions sum ≤ 1
    # (one shared group may add at most its own overlapping budget,
    # which the cumulative check also caps against non-members).
    for element in range(N_ELEMENTS):
        total = sum(
            s.time_fraction
            for s in admitted
            if s.element_mask[element] and not s.shared_group
        )
        assert total <= 1.0 + 1e-9


@given(st.lists(slice_requests(), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_release_restores_capacity(requests):
    """Releasing every admitted task returns the allocator to empty."""
    allocator = SliceAllocator()
    names = []
    for i, request in enumerate(requests):
        try:
            allocator.allocate(f"t{i}", [request])
            names.append(f"t{i}")
        except AdmissionError:
            continue
    for name in names:
        allocator.release(name)
    assert allocator.tasks_with_allocations() == []
    # A full-surface exclusive slice now fits again.
    full = ResourceSlice(
        surface_id="s1",
        element_mask=np.ones(N_ELEMENTS, dtype=bool),
        band_hz=BAND,
        time_fraction=1.0,
    )
    assert allocator.can_allocate(full)


@given(slice_requests(), slice_requests())
@settings(max_examples=60, deadline=None)
def test_admission_order_of_two_is_symmetric(a, b):
    """For two slices, admissibility of the pair is order-independent."""
    def fits(first, second):
        allocator = SliceAllocator()
        allocator.allocate("t1", [first])
        return allocator.can_allocate(second)

    assert fits(a, b) == fits(b, a)
