"""Property-based tests: core configuration and unit invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    Granularity,
    SurfaceConfiguration,
    quantize_phase,
    tie_to_granularity,
    wrap_phase,
)
from repro.core import units

TWO_PI = 2.0 * np.pi

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

phase_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.floats(-50.0, 50.0),
)


class TestPhaseProperties:
    @given(phase_arrays)
    def test_wrap_is_canonical_and_idempotent(self, phases):
        wrapped = wrap_phase(phases)
        assert np.all(wrapped >= 0.0) and np.all(wrapped < TWO_PI)
        assert np.allclose(wrap_phase(wrapped), wrapped)

    @given(phase_arrays)
    def test_wrap_preserves_phasor(self, phases):
        assert np.allclose(
            np.exp(1j * wrap_phase(phases)), np.exp(1j * phases), atol=1e-9
        )

    @given(phase_arrays, st.integers(1, 4))
    def test_quantize_idempotent_and_level_limited(self, phases, bits):
        q = quantize_phase(phases, bits)
        assert np.allclose(quantize_phase(q, bits), q, atol=1e-12)
        assert len(np.unique(np.round(q, 9))) <= 2 ** bits

    @given(phase_arrays, st.integers(2, 4))
    def test_quantize_error_bounded_by_half_step(self, phases, bits):
        q = quantize_phase(phases, bits)
        step = TWO_PI / 2 ** bits
        # Compare on the circle.
        diff = np.angle(np.exp(1j * (q - phases)))
        assert np.all(np.abs(diff) <= step / 2 + 1e-9)

    @given(phase_arrays, st.sampled_from(list(Granularity)))
    def test_tie_is_idempotent(self, phases, granularity):
        tied = tie_to_granularity(phases, granularity)
        again = tie_to_granularity(tied, granularity)
        assert np.allclose(
            np.exp(1j * again), np.exp(1j * tied), atol=1e-9
        )

    @given(phase_arrays, st.sampled_from(list(Granularity)))
    def test_tie_respects_degrees_of_freedom(self, phases, granularity):
        tied = tie_to_granularity(phases, granularity)
        rows, cols = tied.shape
        unique = len(np.unique(np.round(tied, 9)))
        assert unique <= granularity.degrees_of_freedom(rows, cols)


class TestConfigurationProperties:
    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(0, 2 ** 32 - 1),
    )
    def test_coefficients_unit_modulus(self, rows, cols, seed):
        cfg = SurfaceConfiguration.random(
            rows, cols, rng=np.random.default_rng(seed)
        )
        coeffs = cfg.coefficients()
        assert coeffs.shape == (rows, cols)
        assert np.allclose(np.abs(coeffs), 1.0)

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 3))
    def test_quantized_copy_round_trips_shape(self, rows, cols, bits):
        cfg = SurfaceConfiguration.zeros(rows, cols)
        q = cfg.quantized(bits)
        assert q.shape == cfg.shape
        assert q == cfg  # zero phases survive quantization


class TestUnitProperties:
    @given(st.floats(-120.0, 60.0))
    def test_dbm_watts_round_trip(self, dbm):
        assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == (
            __import__("pytest").approx(dbm, abs=1e-9)
        )

    @given(st.floats(-120.0, 120.0))
    def test_db_linear_round_trip(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == (
            __import__("pytest").approx(db, abs=1e-9)
        )

    @given(st.floats(1e6, 1e12))
    def test_wavelength_positive_and_inverse(self, freq):
        lam = units.wavelength(freq)
        assert lam > 0
        assert units.SPEED_OF_LIGHT / lam == __import__("pytest").approx(
            freq, rel=1e-12
        )

    @given(st.floats(1.0, 1e10), st.floats(0.0, 20.0))
    def test_noise_floor_monotone_in_bandwidth_and_nf(self, bw, nf):
        base = units.thermal_noise_dbm(bw)
        assert units.thermal_noise_dbm(bw, nf) >= base
        assert units.thermal_noise_dbm(bw * 2, nf) > units.thermal_noise_dbm(
            bw, nf
        )
