"""Property-based tests: channel model, slices, geometry, analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import EmpiricalCDF
from repro.channel import ChannelModel
from repro.core.units import ghz
from repro.geometry import CONCRETE, Wall, vec3
from repro.orchestrator import ResourceSlice


def make_model(seed, k, m, e1, e2, with_pair):
    rng = np.random.default_rng(seed)
    ap_to_surface = {
        "a": rng.normal(size=(m, e1)) + 1j * rng.normal(size=(m, e1)),
        "b": rng.normal(size=(m, e2)) + 1j * rng.normal(size=(m, e2)),
    }
    surface_to_points = {
        "a": rng.normal(size=(k, e1)) + 1j * rng.normal(size=(k, e1)),
        "b": rng.normal(size=(k, e2)) + 1j * rng.normal(size=(k, e2)),
    }
    pairs = {}
    if with_pair:
        g = rng.normal(size=(e1, e2)) + 1j * rng.normal(size=(e1, e2))
        pairs[("a", "b")] = g
        pairs[("b", "a")] = g.T
    return ChannelModel(
        points=rng.normal(size=(k, 3)),
        direct=rng.normal(size=(k, m)) + 1j * rng.normal(size=(k, m)),
        ap_to_surface=ap_to_surface,
        surface_to_points=surface_to_points,
        surface_to_surface=pairs,
        frequency_hz=28e9,
    )


class TestChannelModelProperties:
    @given(
        st.integers(0, 10 ** 6),
        st.integers(1, 4),
        st.integers(1, 3),
        st.integers(1, 5),
        st.integers(1, 5),
        st.booleans(),
        st.sampled_from(["a", "b"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_linear_form_consistency(self, seed, k, m, e1, e2, pair, sid):
        """linear_form(s).evaluate(x_s) == evaluate(all) for any configs."""
        model = make_model(seed, k, m, e1, e2, pair)
        rng = np.random.default_rng(seed + 1)
        configs = {
            s: np.exp(1j * rng.uniform(0, 2 * np.pi, model.num_elements(s)))
            for s in model.surface_ids
        }
        form = model.linear_form(sid, configs)
        assert np.allclose(form.evaluate(configs[sid]), model.evaluate(configs))

    @given(st.integers(0, 10 ** 6), st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_superposition_without_pairs(self, seed, k):
        """Without cascades the model is linear: surfaces superpose."""
        model = make_model(seed, k, 2, 4, 3, with_pair=False)
        rng = np.random.default_rng(seed + 2)
        xa = np.exp(1j * rng.uniform(0, 2 * np.pi, 4))
        xb = np.exp(1j * rng.uniform(0, 2 * np.pi, 3))
        za, zb = np.zeros(4), np.zeros(3)
        both = model.evaluate({"a": xa, "b": xb})
        only_a = model.evaluate({"a": xa, "b": zb})
        only_b = model.evaluate({"a": za, "b": xb})
        neither = model.evaluate({"a": za, "b": zb})
        assert np.allclose(both, only_a + only_b - neither)


class TestSliceProperties:
    band = st.tuples(st.floats(1e9, 5e9), st.floats(5.1e9, 9e9))

    @st.composite
    def slices(draw, surface=st.sampled_from(["s1", "s2"])):
        n = 8
        mask = draw(
            st.lists(st.booleans(), min_size=n, max_size=n).filter(any)
        )
        lo = draw(st.floats(1e9, 5e9))
        hi = draw(st.floats(5.1e9, 9e9))
        return ResourceSlice(
            surface_id=draw(surface),
            element_mask=np.array(mask),
            band_hz=(lo, hi),
            time_fraction=draw(st.floats(0.1, 1.0)),
            shared_group=draw(st.sampled_from(["", "g1"])),
        )

    @given(slices(), slices())
    @settings(max_examples=60, deadline=None)
    def test_conflict_is_symmetric(self, a, b):
        assert a.conflicts_with(b) == b.conflicts_with(a)

    @given(slices())
    def test_slice_never_conflicts_when_alone_in_group(self, a):
        same_group = ResourceSlice(
            surface_id=a.surface_id,
            element_mask=a.element_mask,
            band_hz=a.band_hz,
            time_fraction=1.0,
            shared_group="shared",
        )
        other = ResourceSlice(
            surface_id=a.surface_id,
            element_mask=a.element_mask,
            band_hz=a.band_hz,
            time_fraction=1.0,
            shared_group="shared",
        )
        assert not same_group.conflicts_with(other)


class TestGeometryProperties:
    @given(
        st.floats(-5, 5),
        st.floats(-5, 5),
        st.floats(0.1, 3.0),
    )
    def test_wall_mirror_involution(self, px, py, pz):
        wall = Wall(start=vec3(0, -4), end=vec3(1, 4), material=CONCRETE)
        p = vec3(px, py, pz)
        assert np.allclose(wall.mirror_point(wall.mirror_point(p)), p)

    @given(st.floats(-5, 5), st.floats(-5, 5), st.floats(0.1, 2.9))
    def test_mirror_preserves_distance_to_plane(self, px, py, pz):
        wall = Wall(start=vec3(0, -4), end=vec3(0, 4), material=CONCRETE)
        p = vec3(px, py, pz)
        m = wall.mirror_point(p)
        # x-coordinate flips sign across the x=0 plane.
        assert m[0] == pytest.approx(-p[0], abs=1e-9)
        assert m[1] == pytest.approx(p[1])
        assert m[2] == pytest.approx(p[2])


class TestCDFProperties:
    samples = st.lists(
        st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50
    )

    @given(samples)
    def test_cdf_monotone_and_bounded(self, values):
        cdf = EmpiricalCDF(np.array(values))
        xs = np.linspace(min(values) - 1, max(values) + 1, 20)
        ys = [cdf.at(x) for x in xs]
        assert all(0.0 <= y <= 1.0 for y in ys)
        assert all(a <= b + 1e-12 for a, b in zip(ys, ys[1:]))
        assert cdf.at(max(values)) == pytest.approx(1.0)

    @given(samples, st.floats(0, 100))
    def test_percentile_within_range(self, values, q):
        cdf = EmpiricalCDF(np.array(values))
        p = cdf.percentile(q)
        assert min(values) - 1e-9 <= p <= max(values) + 1e-9
