"""Clock, events, dynamics."""

import numpy as np
import pytest

from repro.geometry import Environment, CONCRETE, vec3
from repro.hwmgr import ClientDevice
from repro.runtime import (
    EndpointMoved,
    Event,
    EventBus,
    EnvironmentDynamics,
    FurnitureMoved,
    HumanMoved,
    SimClock,
    Walker,
)


class TestClock:
    def test_advance_and_now(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now == pytest.approx(2.5)

    def test_callbacks_fire_in_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(2.0, lambda: fired.append("b"))
        clock.schedule(1.0, lambda: fired.append("a"))
        clock.schedule_in(5.0, lambda: fired.append("c"))
        assert clock.advance(3.0) == 2
        assert fired == ["a", "b"]
        assert clock.pending() == 1

    def test_callback_sees_its_scheduled_time(self):
        clock = SimClock()
        seen = []
        clock.schedule(1.5, lambda: seen.append(clock.now))
        clock.advance(10.0)
        assert seen == [1.5]
        assert clock.now == 10.0

    def test_validation(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestEventBus:
    def test_publish_subscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(HumanMoved, seen.append)
        bus.publish(HumanMoved(time=1.0, key="p", position=(1, 2, 0)))
        bus.publish(FurnitureMoved(time=2.0, key="sofa", offset=(1, 0, 0)))
        assert len(seen) == 1

    def test_base_class_subscription_sees_subclasses(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Event, seen.append)
        bus.publish(HumanMoved(time=1.0))
        bus.publish(EndpointMoved(time=2.0))
        assert len(seen) == 2

    def test_log_and_filter(self):
        bus = EventBus()
        bus.publish(HumanMoved(time=1.0))
        bus.publish(EndpointMoved(time=2.0))
        assert len(bus.log) == 2
        assert len(bus.events_of(HumanMoved)) == 1


class TestWalker:
    def test_walks_along_legs(self):
        walker = Walker("p", [(0, 0), (10, 0)], speed_mps=1.0)
        pos = walker.step(3.0)
        assert pos[0] == pytest.approx(3.0)

    def test_loops_back(self):
        walker = Walker("p", [(0, 0), (2, 0)], speed_mps=1.0)
        walker.step(3.0)  # 2 to the end, 1 back along the return leg
        assert walker.position()[0] == pytest.approx(1.0)

    def test_box_follows_position(self):
        walker = Walker("p", [(0, 0), (4, 0)], speed_mps=2.0)
        walker.step(1.0)
        box = walker.box()
        assert box.center[0] == pytest.approx(2.0)
        assert box.hi[2] == pytest.approx(1.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            Walker("p", [(0, 0)])
        with pytest.raises(ValueError):
            Walker("p", [(0, 0), (1, 0)], speed_mps=0.0)


class TestDynamics:
    @pytest.fixture()
    def env(self):
        e = Environment(name="dyn")
        e.add_wall_2d((0, 0), (10, 0), CONCRETE)
        return e

    def test_walker_mutates_environment(self, env):
        dyn = EnvironmentDynamics(env)
        dyn.add_walker(Walker("p", [(1, 1), (5, 1)], speed_mps=1.0))
        v0 = env.version
        published = dyn.step(1.0)
        assert published == 1
        assert env.version > v0
        assert len(dyn.bus.events_of(HumanMoved)) == 1

    def test_furniture_and_endpoint_moves(self, env):
        from repro.geometry import Box, WOOD

        dyn = EnvironmentDynamics(env)
        env.add_dynamic_box("sofa", Box(vec3(1, 1, 0), vec3(2, 2, 1), WOOD))
        dyn.move_furniture("sofa", (1, 0, 0))
        assert len(dyn.bus.events_of(FurnitureMoved)) == 1
        client = ClientDevice("phone", vec3(0, 0, 1))
        dyn.move_endpoint(client, (3, 3, 1))
        assert np.allclose(client.position, [3, 3, 1])
        assert len(dyn.bus.events_of(EndpointMoved)) == 1

    def test_step_validation(self, env):
        dyn = EnvironmentDynamics(env)
        with pytest.raises(ValueError):
            dyn.step(0.0)
