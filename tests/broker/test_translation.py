"""Demand models, profiles, and demand→service translation."""

import pytest

from repro.broker import (
    ApplicationDemand,
    PROFILES,
    demand_for,
    required_snr_db,
    translate_demand,
)
from repro.core.errors import TranslationError
from repro.em import LinkBudget


@pytest.fixture()
def budget():
    return LinkBudget(bandwidth_hz=400e6)


class TestDemand:
    def test_validation(self):
        with pytest.raises(TranslationError):
            ApplicationDemand("x", "c", "r")  # requests nothing
        with pytest.raises(TranslationError):
            ApplicationDemand("x", "c", "r", throughput_mbps=-1)
        with pytest.raises(TranslationError):
            ApplicationDemand("x", "c", "r", throughput_mbps=1, latency_ms=0)
        with pytest.raises(TranslationError):
            ApplicationDemand("x", "c", "r", charging_w=-0.1)
        with pytest.raises(TranslationError):
            ApplicationDemand("x", "c", "r", throughput_mbps=1, priority=-1)

    def test_latency_sensitivity(self):
        vr = ApplicationDemand("vr", "c", "r", throughput_mbps=400, latency_ms=10)
        stream = ApplicationDemand(
            "tv", "c", "r", throughput_mbps=50, latency_ms=200
        )
        assert vr.latency_sensitive
        assert not stream.latency_sensitive


class TestProfiles:
    def test_all_profiles_build(self):
        for name in PROFILES:
            demand = demand_for(name, "phone", "bedroom")
            assert demand.app_name == name

    def test_overrides(self):
        demand = demand_for("video_streaming", "tv", "living", priority=9)
        assert demand.priority == 9

    def test_unknown_profile(self):
        with pytest.raises(TranslationError):
            demand_for("quantum_teleport", "c", "r")

    def test_vr_profile_shape(self):
        vr = demand_for("vr_gaming", "headset", "living")
        assert vr.throughput_mbps >= 100
        assert vr.latency_sensitive
        assert vr.needs_sensing


class TestRequiredSnr:
    def test_monotone_in_throughput(self, budget):
        low = required_snr_db(
            ApplicationDemand("a", "c", "r", throughput_mbps=10), budget
        )
        high = required_snr_db(
            ApplicationDemand("a", "c", "r", throughput_mbps=800), budget
        )
        assert high > low

    def test_latency_adds_margin(self, budget):
        base = required_snr_db(
            ApplicationDemand("a", "c", "r", throughput_mbps=100, latency_ms=100),
            budget,
        )
        tight = required_snr_db(
            ApplicationDemand("a", "c", "r", throughput_mbps=100, latency_ms=10),
            budget,
        )
        assert tight == pytest.approx(base + 3.0)

    def test_requires_throughput(self, budget):
        with pytest.raises(TranslationError):
            required_snr_db(
                ApplicationDemand("a", "c", "r", needs_sensing=True), budget
            )


class TestTranslation:
    def test_vr_demand_produces_link_and_sensing(self, budget):
        calls = translate_demand(
            demand_for("vr_gaming", "headset", "living"), budget
        )
        functions = [c.function for c in calls]
        assert "enhance_link" in functions
        assert "enable_sensing" in functions
        link = next(c for c in calls if c.function == "enhance_link")
        assert link.arguments["client_id"] == "headset"
        assert link.arguments["snr"] > 0

    def test_secure_banking_produces_protection(self, budget):
        calls = translate_demand(
            demand_for("secure_banking", "phone", "living"), budget
        )
        functions = [c.function for c in calls]
        assert "protect_link" in functions
        protect = next(c for c in calls if c.function == "protect_link")
        assert protect.arguments["priority"] >= 7

    def test_charging_produces_powering(self, budget):
        calls = translate_demand(
            demand_for("wireless_charging", "phone", "living"), budget
        )
        assert [c.function for c in calls] == ["init_powering"]

    def test_every_profile_translates(self, budget):
        for name in PROFILES:
            calls = translate_demand(demand_for(name, "c", "r"), budget)
            assert calls
