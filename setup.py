"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 660 editable installs fail; ``pip install -e . --no-use-pep517``
falls back to this shim and works offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
