"""Figure 4b — hardware cost vs achievable median SNR."""

from conftest import run_once

from repro.experiments import fig4


def run_cost_sweep():
    return fig4.run(
        passive_sizes=(24, 48, 100),
        programmable_sizes=(12, 22, 30),
        hybrid_sizes=((64, 12), (80, 16)),
    )


def test_bench_fig4b(benchmark):
    result = run_once(benchmark, run_cost_sweep)
    print()
    print(result.render_sweep())
    print()
    print(result.render_targets())
    # The paper's headline: for high median-SNR targets the hybrid
    # needs a fraction of the programmable-only hardware cost, and the
    # passive-only approach saturates (cannot reach the target at any
    # size — its doorway wedge geometrically caps the static flood).
    target = 25.0
    hybrid = result.cheapest_reaching("hybrid", target)
    prog = result.cheapest_reaching("programmable-only", target)
    passive = result.cheapest_reaching("passive-only", target)
    assert hybrid is not None, "hybrid never reached the target"
    assert prog is not None, "programmable-only never reached the target"
    assert passive is None, "passive-only should saturate below 25 dB"
    assert hybrid.cost_usd < 0.5 * prog.cost_usd
    # Passive-only saturation: tripling the size gains (almost) nothing.
    passive_medians = [
        p.median_snr_db for p in result.points if p.strategy == "passive-only"
    ]
    assert max(passive_medians) - min(passive_medians) < 2.0
