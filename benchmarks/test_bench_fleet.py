"""Fleet bench — routing overhead over direct single-broker dispatch.

Runs the same seeded workload twice and compares per-request dispatch
time end to end (submit → RUNNING, coalesced solves included):

* **direct** — requests go straight into one shard's pipeline, the
  plain single-broker path every pre-fleet caller used, and
* **fleet** — the identical shard sits behind a :class:`FleetBroker`,
  so every request additionally pays placement (load snapshot +
  strategy ranking) and routing-decision stamping.

The headline gate: fleet routing adds **<10%** to single-broker
dispatch.  Placement runs off a cached load snapshot refreshed per
tick, so the routing layer costs dict lookups and one ranking pass per
request — noise-level against the millisecond-scale solve pipeline.
Both paths are measured ``TRIALS`` times interleaved and compared on
their medians to keep scheduler jitter out of the gate.

A 3-shard congestion-aware scenario run is recorded alongside as data
(placements, spills, SLO), not gated here — ``tests/fleet/`` gates its
semantics.

Results land in ``BENCH_fleet.json`` at the repo root.

Set ``PERF_BENCH_SMALL=1`` for the CI smoke variant (fewer requests
and trials, overhead gate still asserted).
"""

import json
import os
import statistics
import time
from pathlib import Path

from _meta import bench_meta
from conftest import run_once

from repro.analysis.tables import render_table
from repro.broker.calls import reset_request_counter
from repro.broker.demands import ApplicationDemand
from repro.broker.handle import HandleStatus
from repro.experiments import fleet as fleet_experiment
from repro.fleet import (
    EnvironmentShard,
    FleetBroker,
    ShardSpec,
    StaticZoneMap,
)
from repro.orchestrator.tasks import reset_task_counter
from repro.runtime.clock import SimClock
from repro.telemetry import Telemetry

SMALL = bool(os.environ.get("PERF_BENCH_SMALL"))
REQUESTS = 10 if SMALL else 20
TRIALS = 3 if SMALL else 5
PANEL_SIZE = 4
SEED = 1
MAX_TICKS = 400
OVERHEAD_GATE_PCT = 10.0

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"


def _demands():
    return [
        ApplicationDemand(
            app_name=f"app-{i}",
            client_id=f"z1:cl-{i}",
            room_id="bedroom",
            throughput_mbps=10.0,
            priority=5,
        )
        for i in range(REQUESTS)
    ]


def _spec():
    return ShardSpec(
        shard_id="z1", zone="z1", seed=SEED, panel_size=PANEL_SIZE
    )


def _drive(submit, tick):
    """Submit the workload, tick until served; wall seconds per request."""
    start = time.perf_counter()
    handles = [submit(demand) for demand in _demands()]
    for _ in range(MAX_TICKS):
        tick()
        if all(h.status is HandleStatus.RUNNING for h in handles):
            break
    elapsed = time.perf_counter() - start
    served = sum(
        1 for h in handles if h.status is HandleStatus.RUNNING
    )
    assert served == REQUESTS, f"only {served}/{REQUESTS} served"
    return elapsed / REQUESTS


def _direct_dispatch_s():
    """Per-request dispatch through a bare single-shard pipeline."""
    reset_task_counter()
    reset_request_counter()
    clock = SimClock()
    telemetry = Telemetry()
    telemetry.bind_sim_clock(lambda: clock.now)
    shard = EnvironmentShard(_spec(), clock=clock, telemetry=telemetry)
    for demand in _demands():
        shard.ensure_client(demand.client_id)

    def tick():
        clock.advance(0.1)
        shard.pipeline.tick()

    try:
        return _drive(shard.pipeline.submit, tick)
    finally:
        shard.close()


def _fleet_dispatch_s():
    """Per-request dispatch through the same shard behind the fleet."""
    reset_task_counter()
    reset_request_counter()
    fleet = FleetBroker([_spec()], strategy=StaticZoneMap({"z1": "z1"}))
    for demand in _demands():
        fleet.shards["z1"].ensure_client(demand.client_id)
    try:
        return _drive(fleet.submit, lambda: fleet.tick(0.1))
    finally:
        fleet.close()


def run_fleet_suite():
    direct_trials = []
    fleet_trials = []
    for _ in range(TRIALS):
        direct_trials.append(_direct_dispatch_s())
        fleet_trials.append(_fleet_dispatch_s())
    direct_s = statistics.median(direct_trials)
    fleet_s = statistics.median(fleet_trials)
    overhead_pct = (fleet_s / direct_s - 1.0) * 100.0

    scenario = fleet_experiment.run(
        shards=3,
        requests=9 if SMALL else 12,
        seed=SEED,
        panel_size=PANEL_SIZE,
    )
    return {
        "small": SMALL,
        "requests": REQUESTS,
        "trials": TRIALS,
        "direct_dispatch_ms": round(direct_s * 1e3, 4),
        "fleet_dispatch_ms": round(fleet_s * 1e3, 4),
        "routing_overhead_pct": round(overhead_pct, 2),
        "overhead_gate_pct": OVERHEAD_GATE_PCT,
        "scenario_3shard": scenario.summary(),
    }


def test_bench_fleet(benchmark):
    results = run_once(benchmark, run_fleet_suite)
    results["meta"] = bench_meta()
    OUTPUT.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    print()
    print(
        render_table(
            ("path", "ms/request"),
            [
                ("direct", f"{results['direct_dispatch_ms']:.3f}"),
                ("fleet", f"{results['fleet_dispatch_ms']:.3f}"),
            ],
            title=(
                f"Fleet routing overhead: "
                f"{results['routing_overhead_pct']:+.2f}% "
                f"({REQUESTS} requests, median of {TRIALS})"
            ),
        )
    )
    print(f"results written to {OUTPUT}")

    assert results["routing_overhead_pct"] < OVERHEAD_GATE_PCT, results
    assert results["scenario_3shard"]["slo_met"], results
