"""Table 1 — regenerate the hardware catalog table."""

from repro.experiments import table1


def test_bench_table1(benchmark):
    result = benchmark(table1.run)
    print()
    print(result.render())
    # All 13 rows of the paper's table, in its order.
    assert len(result.rows) == 13
    assert result.rows[0][0] == "LAIA"
    assert result.rows[-1][0] == "AutoMS"
    # The paper's cost spread: programmable mmWave hardware costs
    # dollars per element, passive sheets fractions of a cent.
    mmwall = next(r for r in result.rows if r[0] == "mmWall")
    automs = next(r for r in result.rows if r[0] == "AutoMS")
    assert "2.5" in mmwall[4]
    assert "e-05" in automs[4]
