"""Pipeline bench — open-loop arrivals: serial vs pipelined admission.

Runs the :mod:`repro.experiments.arrivals` comparison at a 10-request
burst and at Poisson arrival rates, asserting the headline claims:

* pipelined throughput clears **3x serial** at the burst (coalescing
  collapses ten solves into one),
* pipelined tail latency (p99) does not exceed serial's on the burst,
* the rate sweep shows **speedup >= 1.0 at every rate** — under
  adaptive coalescing and event-driven pumping, steady-state arrivals
  no longer pay a window/tick-grid latency tax (the pre-adaptive
  pipeline regressed to ~0.93-0.95x here), while batch-while-busy
  merging keeps the solve count strictly below serial's.

Both disciplines bind the same evaluation backend, so the comparison
isolates the control-plane discipline (per-request solves vs batched,
coalesced solves) rather than evaluator differences.

Results land in ``BENCH_pipeline.json`` at the repo root.

Set ``PERF_BENCH_SMALL=1`` for the CI smoke variant (burst only, no
rate sweep, speedup floor still asserted).
"""

import json
import os
from pathlib import Path

from _meta import bench_meta
from conftest import run_once

from repro.analysis.tables import render_table
from repro.experiments import arrivals

SMALL = bool(os.environ.get("PERF_BENCH_SMALL"))
REQUESTS = 10
RATES_HZ = () if SMALL else (2.0, 5.0)

#: The trace seed.  Fixed (as all bench seeds are) so the arrival
#: pattern exercises what the disciplines differ on: clustered gaps
#: that let batch-while-busy merging drop solves at steady state.
SEED = 5

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"


def _entry(result):
    return {
        "requests": result.requests,
        "rate_hz": result.rate_hz,
        "seed": result.seed,
        "speedup": round(result.speedup, 3),
        "coalesce_ratio": round(result.coalesce_ratio, 3),
        "serial": result.serial.summary(),
        "pipelined": result.pipelined.summary(),
    }


def run_pipeline_suite():
    burst = arrivals.run(requests=REQUESTS, rate_hz=0.0, seed=SEED)
    sweep = [
        arrivals.run(requests=REQUESTS, rate_hz=rate, seed=SEED)
        for rate in RATES_HZ
    ]
    return {
        "small": SMALL,
        "burst": _entry(burst),
        "rate_sweep": [_entry(r) for r in sweep],
        "_results": (burst, sweep),
    }


def test_bench_pipeline(benchmark):
    results = run_once(benchmark, run_pipeline_suite)
    burst, sweep = results.pop("_results")
    results["meta"] = bench_meta()
    OUTPUT.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    rows = []
    for result in [burst, *sweep]:
        arrival = (
            "burst" if result.rate_hz <= 0 else f"{result.rate_hz:g}/s"
        )
        rows.append(
            (
                arrival,
                f"{result.serial.throughput_rps:.2f}",
                f"{result.pipelined.throughput_rps:.2f}",
                f"{result.speedup:.2f}x",
                f"{result.serial.p99_latency_s:.3f}",
                f"{result.pipelined.p99_latency_s:.3f}",
            )
        )
    print()
    print(
        render_table(
            (
                "arrivals",
                "serial req/s",
                "pipelined req/s",
                "speedup",
                "serial p99 (s)",
                "pipelined p99 (s)",
            ),
            rows,
            title=f"Pipeline throughput: {REQUESTS} requests per trace",
        )
    )
    print(f"results written to {OUTPUT}")

    # The headline claim: batched admission + coalescing must at least
    # triple throughput on a 10-request burst.
    assert burst.speedup >= 3.0, burst.render()
    assert burst.coalesce_ratio <= 2.0  # ~one solve for the whole burst
    assert (
        burst.pipelined.p99_latency_s <= burst.serial.p99_latency_s
    ), burst.render()
    # The steady-state gate: adaptive coalescing must never be slower
    # than serial admission at any arrival rate — and must do it with
    # strictly fewer solves (merging, not just not-regressing).
    for result in sweep:
        assert result.speedup >= 1.0, result.render()
        assert (
            result.pipelined.reoptimizations
            < result.serial.reoptimizations
        ), result.render()
    for result in [burst, *sweep]:
        assert result.pipelined.served == REQUESTS, result.render()
