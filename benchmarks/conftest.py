"""Shared benchmark fixtures.

Benchmarks run each experiment once (``pedantic`` with a single round —
these are minutes-scale simulations, not microbenchmarks) and assert
the paper's qualitative shape on the result, so a green benchmark run
doubles as a reproduction check.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
