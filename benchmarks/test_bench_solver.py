"""Solver bench — drift-aware adaptive budgets on the mobility workload.

Runs the mobility dwell workload (a single endpoint walking waypoint
legs with pauses at each waypoint, a reaction every step) two ways over
the identical seeded motion:

* **fixed** — every reaction pays the optimizer's full iteration
  budget, warm-started only from the live hardware configuration (the
  pre-adaptive control plane);
* **adaptive** — the solution store warm-starts each solve from last
  reaction's converged phases, a one-evaluation drift probe scales the
  iteration budget between floor and ceiling, and quiescent dwell
  reactions (the objective goes static while the endpoint pauses) drop
  to the floor budget.

The search is configured to *converge* inside the ceiling
(``search_scale``/``search_decay`` shrink the perturbation fast), so
the fixed baseline's tail iterations on quiescent reactions are
genuinely redundant — that redundancy is what the adaptive path
harvests.  Per-seed trajectories are deterministic, so the quality
ratio is exact and repeatable; only wall time carries machine noise,
which interleaved trials average out.

Gates:

* median reaction-solve wall time (the daemon's ``optimize_s``) speeds
  up by at least **1.5x** under adaptive budgets;
* quality parity: the mean linear observed-grid SNR over the run,
  averaged across the seed set, stays within **1%** of the
  fixed-budget baseline — the saved iterations were redundant;
* determinism: two adaptive runs produce the same SNR digest.

Results land in ``BENCH_solver.json`` at the repo root (override with
``PERF_BENCH_OUTPUT``).  ``PERF_EVAL_BACKEND`` selects the candidate-
evaluation backend (thread | process) — CI runs both and archives both
artifacts.  Set ``PERF_BENCH_SMALL=1`` for the CI smoke variant.
"""

import json
import os
import statistics
from pathlib import Path

import numpy as np
from _meta import bench_meta
from conftest import run_once

from repro.analysis.tables import render_table
from repro.experiments import mobility

SMALL = bool(os.environ.get("PERF_BENCH_SMALL"))
SEEDS = (0, 1) if SMALL else (0, 1, 2)
TRIALS = 1 if SMALL else 2

#: Bench shape: one endpoint walking the apartment client loop with
#: waypoint dwells — quiescent reactions where the objective is static.
#: The search converges well inside the 96-iteration ceiling, so the
#: fixed baseline's tail iterations are redundant on those reactions.
SCENE = "apartment"
CLIENTS = 1
WALKERS = 0
CLIENT_PAUSE_S = 1.5
PANEL_SIZE = 8
GRID_SPACING_M = 0.75
STEPS = 20
SOLVE_ITERATIONS = 96
SEARCH_SCALE = 0.5
SEARCH_DECAY = 0.7

SPEEDUP_GATE = 1.5
QUALITY_TOLERANCE = 0.01

EVAL_BACKEND = os.environ.get("PERF_EVAL_BACKEND", "thread")
OUTPUT = Path(
    os.environ.get("PERF_BENCH_OUTPUT")
    or Path(__file__).resolve().parents[1] / "BENCH_solver.json"
)


def _config(adaptive: bool, seed: int) -> mobility.MobilityConfig:
    return mobility.MobilityConfig(
        scene=SCENE,
        seed=seed,
        steps=STEPS,
        clients=CLIENTS,
        walkers=WALKERS,
        client_pause_s=CLIENT_PAUSE_S,
        panel_size=PANEL_SIZE,
        grid_spacing_m=GRID_SPACING_M,
        solve_iterations=SOLVE_ITERATIONS,
        search_scale=SEARCH_SCALE,
        search_decay=SEARCH_DECAY,
        adaptive_budget=adaptive,
        # Budget savings only: the early stop stays out of the bench
        # path so floored quiescent solves replay exact prefixes of the
        # fixed baseline's solves (tests pin the early stop separately).
        early_stop_eps=None,
        eval_backend=EVAL_BACKEND,
        measure_wall=True,
    )


def _mean_linear_snr(result) -> float:
    return float(np.mean(10.0 ** (np.asarray(result.snr_trace) / 10.0)))


def run_solver_comparison():
    """Interleaved fixed/adaptive runs over an identical seed set."""
    wall = {"fixed": [], "adaptive": []}
    snr = {"fixed": [], "adaptive": []}
    last = {}
    for _ in range(TRIALS):
        for seed in SEEDS:
            for mode, adaptive in (("fixed", False), ("adaptive", True)):
                result = mobility.run(_config(adaptive, seed))
                assert result.gate_failures() == [], result.gate_failures()
                wall[mode].extend(result.wall_solve_s)
                snr[mode].append(_mean_linear_snr(result))
                last[mode] = result
    out = {}
    for mode, result in last.items():
        out[mode] = {
            "median_solve_wall_s": round(statistics.median(wall[mode]), 6),
            "reactions": result.reactions,
            "mean_linear_snr": round(
                float(np.mean(snr[mode][: len(SEEDS)])), 6
            ),
            "final_median_snr_db": round(result.median_snr_db, 4),
            "snr_digest": result.snr_digest,
            "solver_budgeted_iterations": result.solver_budgeted_iterations,
            "solver_used_iterations": result.solver_used_iterations,
            "solver_warm_hits": result.solver_warm_hits,
            "solver_early_stops": result.solver_early_stops,
        }
    out["seeds"] = list(SEEDS)
    out["speedup"] = round(
        out["fixed"]["median_solve_wall_s"]
        / out["adaptive"]["median_solve_wall_s"],
        3,
    )
    out["quality_ratio"] = round(
        out["adaptive"]["mean_linear_snr"] / out["fixed"]["mean_linear_snr"],
        6,
    )
    return out


def run_determinism_check():
    """Two adaptive runs must agree bit for bit on sim-visible output."""
    a = mobility.run(_config(adaptive=True, seed=SEEDS[0]))
    b = mobility.run(_config(adaptive=True, seed=SEEDS[0]))
    assert a.snr_digest == b.snr_digest, "adaptive run is nondeterministic"
    return a.snr_digest


def test_bench_solver_adaptive_budgets(benchmark):
    comparison = run_once(benchmark, run_solver_comparison)
    digest = run_determinism_check()

    print()
    rows = [
        (
            mode,
            f"{stats['median_solve_wall_s'] * 1e3:.1f}",
            f"{stats['solver_used_iterations']}"
            f"/{stats['solver_budgeted_iterations']}",
            str(stats["solver_warm_hits"]),
            f"{stats['mean_linear_snr']:.3f}",
        )
        for mode, stats in comparison.items()
        if isinstance(stats, dict)
    ]
    print(
        render_table(
            ("mode", "solve (ms)", "iters used/budgeted", "warm", "mean SNR"),
            rows,
            title=(
                f"Adaptive solve budgets: {STEPS} steps x {len(SEEDS)} "
                f"seeds, {CLIENTS} client, {SOLVE_ITERATIONS} iters, "
                f"{EVAL_BACKEND} backend"
            ),
        )
    )
    print(
        f"speedup {comparison['speedup']:.2f}x, "
        f"quality ratio {comparison['quality_ratio']:.4f}"
    )

    adaptive = comparison["adaptive"]
    # The budget machinery actually engaged: the store warm-started
    # solves, and no solve overran its cap.  (The speedup gate below is
    # the real proof the caps bit — a renamed fixed loop can't clear
    # 1.5x on identical work.)
    assert adaptive["solver_warm_hits"] > 0
    assert (
        adaptive["solver_used_iterations"]
        <= adaptive["solver_budgeted_iterations"]
    )
    # The headline gate: reaction solves at least 1.5x faster at
    # quality parity.
    assert comparison["speedup"] >= SPEEDUP_GATE, (
        f"adaptive speedup {comparison['speedup']:.2f}x "
        f"below the {SPEEDUP_GATE}x gate"
    )
    assert comparison["quality_ratio"] >= 1.0 - QUALITY_TOLERANCE, (
        f"adaptive quality ratio {comparison['quality_ratio']:.4f} "
        f"lost more than {QUALITY_TOLERANCE:.0%} mean linear SNR"
    )

    OUTPUT.write_text(
        json.dumps(
            {
                "meta": bench_meta(
                    small=SMALL,
                    steps=STEPS,
                    seeds=list(SEEDS),
                    trials=TRIALS,
                    scene=SCENE,
                    clients=CLIENTS,
                    walkers=WALKERS,
                    client_pause_s=CLIENT_PAUSE_S,
                    panel_size=PANEL_SIZE,
                    grid_spacing_m=GRID_SPACING_M,
                    solve_iterations=SOLVE_ITERATIONS,
                    search_scale=SEARCH_SCALE,
                    search_decay=SEARCH_DECAY,
                    eval_backend=EVAL_BACKEND,
                    speedup_gate=SPEEDUP_GATE,
                    quality_tolerance=QUALITY_TOLERANCE,
                ),
                "comparison": comparison,
                "adaptive_snr_digest": digest,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"\nresults written to {OUTPUT}")
