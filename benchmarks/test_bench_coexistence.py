"""Ablation — unintended blocking of other networks (§2.1).

A 28 GHz reflective deployment is audited against 2.4 GHz and 5 GHz
victim networks sharing the apartment: the audit quantifies the
coverage each victim loses to the foreign panels and flags the hazard
hardware — the monitoring/diagnosis capability §5 says the central
control plane enables.
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import render_table
from repro.channel import ula_node
from repro.core.units import ghz
from repro.em import LinkBudget
from repro.experiments import build_scenario
from repro.geometry import vec3
from repro.services import VictimNetwork, audit_networks


def run_audit():
    scenario = build_scenario()
    env = scenario.env
    # The deployed mmWave hardware from the Fig. 4 hybrid, oversized to
    # make the audit's point.
    panels = [
        scenario.passive_panel(64, panel_id="passive-backhaul"),
        scenario.programmable_panel(24, panel_id="prog-steer"),
    ]
    victims = []
    for freq, name in ((ghz(2.4), "2.4GHz-WiFi"), (ghz(5.0), "5GHz-WiFi")):
        ap = ula_node(
            f"ap-{name}", vec3(2.5, 0.4, 2.2), 2, freq, (0, 0, 1), (0.3, 1, 0)
        )
        victims.append(
            VictimNetwork(
                name=name,
                ap=ap,
                budget=LinkBudget(tx_power_dbm=17.0, bandwidth_hz=80e6),
                frequency_hz=freq,
                points=env.room("living").grid(0.8, z=1.2),
            )
        )
    return audit_networks(env, panels, victims)


def test_bench_coexistence(benchmark):
    reports = run_once(benchmark, run_audit)
    print()
    print(
        render_table(
            ("victim network", "median w/o (dB)", "median with (dB)",
             "median drop", "worst drop", "hazard panels"),
            [
                (
                    r.network,
                    f"{r.median_snr_without_db:.1f}",
                    f"{r.median_snr_with_db:.1f}",
                    f"{r.median_drop_db:.1f}",
                    f"{r.worst_point_drop_db:.1f}",
                    ", ".join(r.hazard_panels),
                )
                for r in reports
            ],
            title="Coexistence audit: mmWave deployment vs sub-6 networks",
        )
    )
    for report in reports:
        # Out-of-band reflective panels are flagged for every victim.
        assert set(report.hazard_panels) == {"passive-backhaul", "prog-steer"}
        # Some victim locations measurably suffer.
        assert report.worst_point_drop_db > 1.0
