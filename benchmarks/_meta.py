"""Run-metadata stamping for ``BENCH_*.json`` artifacts.

Perf numbers are meaningless without the machine they came from: a
speedup measured on a single shared core says nothing about an 8-core
runner and vice versa.  Every benchmark writer calls :func:`bench_meta`
and stores the result under a ``"meta"`` key so artifacts archived from
CI (or pasted into EXPERIMENTS.md) carry their own provenance.
"""

import os
import platform
import subprocess
import sys
from pathlib import Path

import numpy as np


def _blas_vendor() -> str:
    """Best-effort BLAS vendor/library behind this NumPy build."""
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "")
        version = blas.get("version", "")
        if name:
            return f"{name} {version}".strip()
    except Exception:
        pass
    return "unknown"


def _git_sha() -> str:
    """The repo commit the numbers were measured at (12 hex chars)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=Path(__file__).resolve().parents[1],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except Exception:
        pass
    return "unknown"


def bench_meta(**extra) -> dict:
    """Provenance block for a benchmark artifact.

    Records the CPU budget, the NumPy/BLAS stack doing the FLOPs, the
    interpreter, and the measured commit.  Keyword arguments (e.g.
    ``workers=2``, ``backend="process"``) are merged in verbatim so
    each suite can add its own knobs.
    """
    meta = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "blas": _blas_vendor(),
        "git_sha": _git_sha(),
    }
    meta.update(extra)
    return meta
