"""Ablation — the multitasking trade-off knob (Fig. 5's joint weight).

Sweeping the localization weight in the joint objective traces the
Pareto front between coverage SNR and localization accuracy, making the
design choice behind Fig. 5 explicit.
"""

from conftest import run_once

from repro.analysis.cdf import summarize
from repro.analysis.tables import render_table
from repro.experiments import fig5

WEIGHTS = (0.1, 0.3, 1.0)


def run_weight_sweep():
    rows = {}
    for weight in WEIGHTS:
        result = fig5.run(joint_weight=weight, panel_size=20)
        errs = summarize(result.error_cdfs)
        snrs = summarize(result.snr_cdfs)
        rows[weight] = {
            "err_p50": errs["Multi-tasking"]["p50"],
            "snr_p50": snrs["Multi-tasking"]["p50"],
            "cov_snr_p50": snrs["Coverage Opt"]["p50"],
            "loc_err_p50": errs["Localization Opt"]["p50"],
        }
    return rows


def test_bench_ablation_joint_weight(benchmark):
    rows = run_once(benchmark, run_weight_sweep)
    print()
    print(
        render_table(
            (
                "loc weight",
                "MT median err (m)",
                "MT median SNR (dB)",
                "coverage-only SNR",
                "loc-only err",
            ),
            [
                (
                    f"{w}",
                    f"{rows[w]['err_p50']:.2f}",
                    f"{rows[w]['snr_p50']:.1f}",
                    f"{rows[w]['cov_snr_p50']:.1f}",
                    f"{rows[w]['loc_err_p50']:.2f}",
                )
                for w in WEIGHTS
            ],
            title="Ablation: localization weight in the joint objective",
        )
    )
    # More localization weight trades SNR for accuracy (weak
    # monotonicity with slack for optimizer noise).
    assert rows[1.0]["snr_p50"] <= rows[0.1]["snr_p50"] + 1.0
    assert rows[1.0]["err_p50"] <= rows[0.1]["err_p50"] + 0.05
    # Every weight keeps the multitask config usable on both metrics.
    for w in WEIGHTS:
        assert rows[w]["err_p50"] < 0.5
        assert rows[w]["snr_p50"] > rows[w]["cov_snr_p50"] - 8.0
