"""Ablation — optimizer choice for configuration search.

The paper: "The optimizer uses gradient descent, while other algorithms
can be easily supported."  This bench compares the four built-in
optimizers on the same coverage problem and checks that the analytic-
gradient methods dominate the black-box ones at equal-ish effort.
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import render_table
from repro.experiments import build_scenario
from repro.orchestrator import (
    Adam,
    GradientDescent,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.services import connectivity

PANEL_SIZE = 16

OPTIMIZERS = {
    "adam": Adam(max_iterations=120, learning_rate=0.2),
    "gradient-descent": GradientDescent(
        learning_rate=0.15, momentum=0.9, max_iterations=120
    ),
    "random-search": RandomSearch(max_iterations=40, population=24, seed=0),
    "simulated-annealing": SimulatedAnnealing(steps=900, seed=0),
}


def run_comparison():
    scenario = build_scenario(grid_spacing_m=0.8)
    panel = scenario.relay_panel(PANEL_SIZE)
    points = scenario.bedroom_grid()
    model = scenario.simulator.build(scenario.ap_node(), points, [panel])
    form = model.linear_form(panel.panel_id, {})
    objective = connectivity.coverage_objective(form, budget=scenario.budget)
    rng = np.random.default_rng(0)
    x0 = rng.uniform(0, 2 * np.pi, objective.dim)
    losses = {}
    medians = {}
    for name, optimizer in OPTIMIZERS.items():
        result = optimizer.optimize(objective, x0.copy())
        losses[name] = result.loss
        medians[name] = float(np.median(objective.snr_db(result.phases)))
    return losses, medians


def test_bench_ablation_optimizers(benchmark):
    losses, medians = run_once(benchmark, run_comparison)
    print()
    print(
        render_table(
            ("optimizer", "final loss", "median SNR (dB)"),
            [
                (name, f"{losses[name]:.3f}", f"{medians[name]:.1f}")
                for name in OPTIMIZERS
            ],
            title="Ablation: optimizers on the coverage objective",
        )
    )
    # Gradient methods must beat the black-box baselines.
    assert losses["adam"] < losses["random-search"]
    assert losses["adam"] < losses["simulated-annealing"]
    assert losses["gradient-descent"] < losses["random-search"]
    # And everything must actually deliver coverage.
    assert all(m > 5.0 for m in medians.values())
