"""Perf bench — incremental leg-level channel cache vs monolithic builds.

Times three variants of ``ChannelSimulator.build()`` on the reference
apartment scene: a cold build (empty caches), a warm incremental
rebuild after a client move (AP→surface and surface→surface legs served
from the leg cache), and the old monolithic path (``leg_cache_size=0``,
every leg re-traced on any change).  Each warm repetition uses a
distinct jittered point set so the exact-match model cache never
short-circuits the build.  Results land in ``BENCH_channel.json`` at
the repo root.

Timings use best-of-N (minimum) — this container's single shared core
makes mean timings far too noisy to compare against.

Set ``PERF_BENCH_SMALL=1`` for the CI smoke variant (coarser grid,
fewer repetitions).  The >=2x incremental-rebuild floor stays asserted
even in the smoke variant: the cached legs dominate the build at any
scene size, so the gate is robust.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _meta import bench_meta
from conftest import run_once
from repro.analysis.tables import render_table
from repro.channel import ChannelSimulator, ula_node
from repro.core.units import ghz
from repro.geometry import apartment_sites, two_room_apartment
from repro.surfaces import (
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    SurfacePanel,
)

FREQ = ghz(28)
SMALL = bool(os.environ.get("PERF_BENCH_SMALL"))
GRID_SPACING = 1.4 if SMALL else 1.0
COLD_REPS = 3 if SMALL else 6
WARM_REPS = 4 if SMALL else 10

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_channel.json"


def make_scene():
    env = two_room_apartment()
    sites = apartment_sites()
    ap = ula_node(
        "ap", sites.ap_position, 4, FREQ, axis=(0, 0, 1), boresight=(1, 0.3, 0)
    )
    panels = [
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        ),
        SurfacePanel(
            "passive",
            GENERIC_PASSIVE_28,
            12,
            12,
            sites.passive_center,
            sites.passive_normal,
        ),
        SurfacePanel(
            "prog",
            GENERIC_PROGRAMMABLE_28,
            8,
            8,
            sites.programmable_center,
            sites.programmable_normal,
        ),
    ]
    points = env.room("bedroom").grid(GRID_SPACING)
    return env, ap, panels, points


def jittered(points, reps):
    """Distinct client-move point sets — one per repetition.

    Each set misses the exact-match model cache but leaves every
    AP→surface and surface→surface leg untouched.
    """
    rng = np.random.default_rng(11)
    return [
        points + rng.uniform(-0.2, 0.2, size=(1, 3)) * np.array([1, 1, 0])
        for _ in range(reps)
    ]


def best_of(fn, reps):
    """Minimum wall time over ``reps`` runs (noise-robust on shared CPUs)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_cold():
    """From-scratch build on a fresh simulator each repetition."""
    env, ap, panels, points = make_scene()

    def once():
        ChannelSimulator(env, FREQ).build(ap, points, panels)

    return best_of(once, COLD_REPS)


def bench_warm_incremental():
    """Client-move rebuilds served through the leg cache."""
    env, ap, panels, points = make_scene()
    sim = ChannelSimulator(env, FREQ)
    model = sim.build(ap, points, panels)
    moves = jittered(points, WARM_REPS)
    retraced_before = sim.leg_cache_stats[1]
    best = float("inf")
    for moved in moves:
        t0 = time.perf_counter()
        sim.build(ap, moved, panels)
        best = min(best, time.perf_counter() - t0)
    legs_retraced = (sim.leg_cache_stats[1] - retraced_before) // WARM_REPS
    return best, legs_retraced, model.num_legs


def bench_monolithic():
    """The same client-move rebuilds with the leg cache disabled."""
    env, ap, panels, points = make_scene()
    sim = ChannelSimulator(env, FREQ, leg_cache_size=0)
    sim.build(ap, points, panels)
    best = float("inf")
    for moved in jittered(points, WARM_REPS):
        t0 = time.perf_counter()
        sim.build(ap, moved, panels)
        best = min(best, time.perf_counter() - t0)
    return best


def check_equivalence():
    """Incremental rebuild must match a from-scratch monolithic build."""
    env, ap, panels, points = make_scene()
    sim = ChannelSimulator(env, FREQ)
    sim.build(ap, points, panels)
    moved = points + np.array([0.17, 0.11, 0.0])
    incremental = sim.build(ap, moved, panels)
    golden = ChannelSimulator(env, FREQ, leg_cache_size=0).build(
        ap, moved, panels
    )
    diffs = [float(np.abs(incremental.direct - golden.direct).max())]
    for sid in incremental.ap_to_surface:
        diffs.append(
            float(
                np.abs(
                    incremental.ap_to_surface[sid] - golden.ap_to_surface[sid]
                ).max()
            )
        )
        diffs.append(
            float(
                np.abs(
                    incremental.surface_to_points[sid]
                    - golden.surface_to_points[sid]
                ).max()
            )
        )
    for key in incremental.surface_to_surface:
        diffs.append(
            float(
                np.abs(
                    incremental.surface_to_surface[key]
                    - golden.surface_to_surface[key]
                ).max()
            )
        )
    return max(diffs)


def run_channel_suite():
    max_abs_diff = check_equivalence()
    cold_s = bench_cold()
    warm_s, legs_retraced, total_legs = bench_warm_incremental()
    mono_s = bench_monolithic()
    _, _, _, points = make_scene()
    return {
        "small_scene": SMALL,
        "num_points": int(points.shape[0]),
        "num_panels": 3,
        "total_legs": int(total_legs),
        "legs_retraced_warm": int(legs_retraced),
        "cold_ms": cold_s * 1e3,
        "warm_incremental_ms": warm_s * 1e3,
        "monolithic_rebuild_ms": mono_s * 1e3,
        "speedup_warm_vs_cold": cold_s / warm_s,
        "speedup_warm_vs_monolithic": mono_s / warm_s,
        "max_abs_diff_vs_monolithic": max_abs_diff,
    }


def test_bench_channel(benchmark):
    results = run_once(benchmark, run_channel_suite)
    results["meta"] = bench_meta()
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print()
    print(
        render_table(
            ("path", "rebuild ms", "legs traced", "speedup"),
            [
                (
                    f"cold build ({results['num_points']} pts, "
                    f"{results['num_panels']} panels)",
                    f"{results['cold_ms']:.2f}",
                    str(results["total_legs"]),
                    "1.00x",
                ),
                (
                    "monolithic rebuild (leg cache off)",
                    f"{results['monolithic_rebuild_ms']:.2f}",
                    str(results["total_legs"]),
                    f"{results['cold_ms'] / results['monolithic_rebuild_ms']:.2f}x",
                ),
                (
                    "incremental rebuild (client move)",
                    f"{results['warm_incremental_ms']:.2f}",
                    str(results["legs_retraced_warm"]),
                    f"{results['speedup_warm_vs_cold']:.2f}x",
                ),
            ],
            title="Channel: incremental leg cache vs monolithic rebuilds",
        )
    )
    print(f"results written to {OUTPUT}")
    assert results["max_abs_diff_vs_monolithic"] <= 1e-12
    assert results["legs_retraced_warm"] < results["total_legs"]
    # The incremental-rebuild contract: a client move must cost far
    # less than re-tracing the scene.  >=2x is the CI gate; the full
    # scene typically lands much higher (recorded in the JSON).
    assert results["speedup_warm_vs_cold"] >= 2.0
    assert results["speedup_warm_vs_monolithic"] >= 2.0
