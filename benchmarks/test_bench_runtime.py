"""Runtime bench — the daemon's detect→reoptimize reaction loop (§5).

"Events such as furniture movement and people walking can require
dynamic reconfiguration of surface states."  This bench walks a person
through the serving beam and measures the daemon's reaction: anomalies
detected, re-optimizations fired, and SNR recovered.
"""

import numpy as np
from conftest import run_once

from repro import SurfOS, ghz
from repro.analysis.tables import render_table
from repro.geometry import apartment_sites, two_room_apartment
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import Adam
from repro.runtime import Walker
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)


def run_reaction_scenario():
    env = two_room_apartment()
    sites = apartment_sites()
    system = SurfOS(
        env,
        frequency_hz=FREQ,
        optimizer=Adam(max_iterations=60),
        grid_spacing_m=1.0,
    )
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    system.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    system.boot(observe_room="bedroom")
    system.orchestrator.optimize_coverage("bedroom")
    system.reoptimize()
    system.dynamics.add_walker(
        Walker("person", [(5.6, 3.2), (8.0, 1.0)], speed_mps=1.5)
    )
    records = system.daemon.run(steps=12, dt=0.5)
    return system, records


def test_bench_runtime_reaction(benchmark):
    system, records = run_once(benchmark, run_reaction_scenario)
    print()
    # Timings come from the telemetry event log, not the daemon's own
    # bookkeeping: every reaction emits a ``daemon.reaction`` event.
    reactions = system.telemetry.events("daemon.reaction")
    rows = [
        (
            f"{e.attrs['detected_at']:.2f}s",
            f"{e.attrs['reaction_latency_s'] * 1e3:.2f} ms",
            f"{e.attrs['median_snr_before_db']:.1f}",
            f"{e.attrs['median_snr_after_db']:.1f}",
        )
        for e in reactions
    ]
    print(
        render_table(
            ("detected", "reaction latency", "median SNR before", "after"),
            rows,
            title="Runtime: daemon reactions to human blockage",
        )
    )
    health = system.daemon.monitor.health_report()
    print(f"monitor: {health}")
    # The walker must trigger detections and at least one reoptimize.
    assert system.daemon.monitor.anomalies
    assert records
    # The telemetry log mirrors the daemon's reaction records.
    assert len(reactions) == len(records)
    assert system.telemetry.get_counter("daemon.reactions") == len(records)
    # Reaction latency is bounded by the control-plane settle time.
    assert all(
        0.0 <= e.attrs["reaction_latency_s"] < 0.5 for e in reactions
    )
