"""Figure 4a — RSS heatmaps of the deployment strategies."""

from conftest import run_once

from repro.experiments import fig4


def run_small_sweep():
    return fig4.run(
        passive_sizes=(48,),
        programmable_sizes=(16,),
        hybrid_sizes=((64, 12),),
    )


def test_bench_fig4a(benchmark):
    result = run_once(benchmark, run_small_sweep)
    print()
    for name, heatmap in result.heatmaps.items():
        print(heatmap.render(title=f"RSS/SNR heatmap — {name} (dB)"))
        print()
    # Each strategy actually produces coverage in the target room.
    for point in result.points:
        assert point.median_snr_db > 5.0
    # The hybrid's dynamic steering covers the room more evenly than
    # the static passive flood: a better worst-area (p10-ish via
    # heatmap minimum over the grid).
    hybrid = result.heatmaps["hybrid-64x12"]
    passive = result.heatmaps["passive-only-48"]
    assert hybrid.stats()["min"] > passive.stats()["min"]
