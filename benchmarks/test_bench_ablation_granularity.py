"""Ablation — control granularity (element vs column vs global).

High-frequency programmable surfaces often support only column-wise
reconfiguration (mmWall, NR-Surface in Table 1).  This bench measures
what the coarser control costs on a focusing task where the target sits
*off* the panel's symmetry plane (column-wise control can only form
cylindrical wavefronts).
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.configuration import Granularity, tie_to_granularity
from repro.experiments import build_scenario
from repro.orchestrator import Adam
from repro.services import connectivity

PANEL_SIZE = 20


def run_granularity_sweep():
    scenario = build_scenario(grid_spacing_m=0.8)
    panel = scenario.relay_panel(PANEL_SIZE)
    # Off-axis, below panel height: needs 2-D (element-wise) focusing.
    point = np.array([6.0, 1.0, 0.6])
    model = scenario.simulator.build(scenario.ap_node(), point[None, :], [panel])
    form = model.linear_form(panel.panel_id, {})
    objective = connectivity.coverage_objective(form, budget=scenario.budget)
    rng = np.random.default_rng(0)
    result = Adam(max_iterations=150, learning_rate=0.2).optimize(
        objective, rng.uniform(0, 2 * np.pi, objective.dim)
    )
    shape = panel.shape
    snrs = {}
    for granularity in (
        Granularity.ELEMENT,
        Granularity.COLUMN,
        Granularity.ROW,
        Granularity.GLOBAL,
    ):
        tied = tie_to_granularity(
            result.phases.reshape(shape), granularity
        ).reshape(-1)
        # Re-polish within the constrained set: optimize then re-tie.
        refined = Adam(max_iterations=80, learning_rate=0.15).optimize(
            objective,
            tied,
            projection=lambda p, g=granularity: tie_to_granularity(
                p.reshape(shape), g
            ).reshape(-1),
        )
        snrs[granularity.value] = float(objective.snr_db(refined.phases)[0])
    return snrs


def test_bench_ablation_granularity(benchmark):
    snrs = run_once(benchmark, run_granularity_sweep)
    print()
    print(
        render_table(
            ("granularity", "focal-point SNR (dB)"),
            [(name, f"{snr:.1f}") for name, snr in snrs.items()],
            title="Ablation: control granularity",
        )
    )
    # Element-wise control dominates; shared states cost real dB; a
    # single global phase is no better than an unconfigured mirror.
    assert snrs["element"] > snrs["column"] + 3.0
    assert snrs["element"] > snrs["row"] + 3.0
    assert snrs["element"] > snrs["global"] + 6.0
