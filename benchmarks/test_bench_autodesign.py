"""Extension bench — §5 design & deployment automation.

"The abstraction layers of SurfOS make it easy to streamline and
automate the entire process [design + deployment] for generalized
hardware types and use cases."  The planner compiles a coverage goal
into (design, site, size) plans; this bench checks the automation finds
a target-meeting plan and that its site choice genuinely matters.
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import render_table
from repro.autodesign import DeploymentGoal, DeploymentPlanner
from repro.core.units import ghz
from repro.experiments import build_scenario
from repro.orchestrator import Adam


def run_planning():
    scenario = build_scenario()
    planner = DeploymentPlanner(
        scenario.env,
        scenario.ap,
        optimizer=Adam(max_iterations=60),
        size_ladder=(8, 12, 16, 24),
        max_sites=4,
        grid_spacing_m=0.9,
    )
    goal = DeploymentGoal(
        room_id="bedroom",
        target_median_snr_db=20.0,
        frequency_hz=ghz(28),
        require_reconfigurable=True,
    )
    return planner.plan(goal, max_plans=8)


def test_bench_autodesign(benchmark):
    plans = run_once(benchmark, run_planning)
    print()
    print(
        render_table(
            ("rank", "plan"),
            [(i + 1, p.describe()) for i, p in enumerate(plans)],
            title="Deployment automation: plans for 20 dB median in the bedroom",
        )
    )
    best = plans[0]
    # The automation finds a target-meeting plan …
    assert best.meets_target
    assert best.predicted_median_snr_db >= 20.0
    # … at a sane hardware bill (well under the naive biggest-panel buy).
    assert best.cost_usd < 1500.0
    # Placement matters: the plan spread spans several dB or different
    # hardware sizes across candidate sites.
    medians = [p.predicted_median_snr_db for p in plans]
    sides = {p.side_elements for p in plans}
    assert max(medians) - min(medians) > 2.0 or len(sides) > 1
