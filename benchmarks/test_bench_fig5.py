"""Figure 5 — multitasking CDFs for joint localization + coverage."""

from conftest import run_once

from repro.experiments import fig5


def test_bench_fig5(benchmark):
    result = run_once(benchmark, fig5.run)
    print()
    print(result.render())
    errs = {name: cdf.median for name, cdf in result.error_cdfs.items()}
    snrs = {name: cdf.median for name, cdf in result.snr_cdfs.items()}
    # Multitasking matches the localization specialist on its metric …
    assert errs["Multi-tasking"] <= errs["Localization Opt"] + 0.1
    # … and stays close to the coverage specialist on SNR (the paper's
    # "little performance loss"), …
    assert snrs["Multi-tasking"] >= snrs["Coverage Opt"] - 4.0
    # … while each specialist clearly loses on the other metric.
    assert errs["Coverage Opt"] > 3 * errs["Multi-tasking"] + 0.2
    assert snrs["Localization Opt"] < snrs["Multi-tasking"] - 5.0
