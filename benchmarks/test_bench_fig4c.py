"""Figure 4c — hardware area vs achievable median SNR."""

from conftest import run_once

from repro.experiments import fig4


def run_area_sweep():
    return fig4.run(
        passive_sizes=(24, 48, 100),
        programmable_sizes=(8, 16, 30),
        hybrid_sizes=((64, 12), (80, 16)),
    )


def test_bench_fig4c(benchmark):
    result = run_once(benchmark, run_area_sweep)
    print()
    print(result.render_targets())
    # Size story: programmable hardware has the smallest spatial
    # footprint ("re-configurability buys size"); passive-only cannot
    # reach high targets at ANY area (the paper's "much larger hardware
    # area size that may not fit"); the hybrid reaches them with a
    # bounded area thanks to its programmable stage.
    target = 25.0
    prog = result.smallest_reaching("programmable-only", target)
    hybrid = result.smallest_reaching("hybrid", target)
    passive = result.smallest_reaching("passive-only", target)
    assert prog is not None and hybrid is not None
    assert passive is None
    assert prog.area_m2 < hybrid.area_m2
    # At a target passive-only CAN reach, it needs more area than the
    # programmable panel that matches it.
    low_target = 15.0
    passive_low = result.smallest_reaching("passive-only", low_target)
    prog_low = result.smallest_reaching("programmable-only", low_target)
    assert passive_low is not None and prog_low is not None
    assert passive_low.area_m2 > prog_low.area_m2
