"""Mobility bench — speculative leg prefetch off the reaction path.

Runs the mobility scenario (continuous endpoint motion, reaction every
step) three ways over the identical seeded motion:

* **prefetch-on** — each step the mobility models' ``peek(dt)``
  predictions are pre-traced into the channel leg LRU *before* the
  daemon cycle, so the reaction's channel build serves them as cache
  hits;
* **prefetch-off** — the same legs are traced inline, on the reaction
  path;
* **cold** — the leg cache is disabled outright (every build re-traces
  every leg).

Gates:

* prefetch changes nothing: the per-step median-SNR traces of all
  three runs are bit-identical (``max_abs_diff == 0.0``);
* every prefetched leg is consumed (hit rate 1.0 ≥ the 0.5 gate) —
  predictions are exact, endpoint motion never mutates the
  environment;
* prefetch-on median reaction wall latency is strictly below
  prefetch-off (and below cold) on trial medians.

A walker + churn variant is recorded as data (obstacle motion purges
some speculatively warmed legs, so its hit rate is the interesting
number), not latency-gated.  Results land in ``BENCH_mobility.json``
at the repo root.  Set ``PERF_BENCH_SMALL=1`` for the CI smoke
variant.
"""

import json
import os
import statistics
from pathlib import Path

import numpy as np
from _meta import bench_meta
from conftest import run_once

from repro.analysis.tables import render_table
from repro.experiments import mobility

SMALL = bool(os.environ.get("PERF_BENCH_SMALL"))
STEPS = 10 if SMALL else 20
TRIALS = 2 if SMALL else 3

#: Bench shape: pure endpoint mobility (no obstacle walkers), a finer
#: grid and larger panel so the speculatively warmed legs carry real
#: trace cost relative to the solve.
SCENE = "apartment"
CLIENTS = 2
PANEL_SIZE = 12
GRID_SPACING_M = 0.5
SOLVE_ITERATIONS = 12
SEED = 0

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_mobility.json"


def _config(**kw) -> mobility.MobilityConfig:
    return mobility.MobilityConfig(
        scene=SCENE,
        seed=SEED,
        steps=STEPS,
        clients=CLIENTS,
        walkers=0,
        panel_size=PANEL_SIZE,
        grid_spacing_m=GRID_SPACING_M,
        solve_iterations=SOLVE_ITERATIONS,
        measure_wall=True,
        **kw,
    )


_MODES = {
    "prefetch_on": {},
    "prefetch_off": {"prefetch": False},
    "cold": {"prefetch": False, "leg_cache_size": 0},
}


def run_prefetch_comparison():
    """Interleaved trials of on/off/cold over the identical motion."""
    wall = {mode: [] for mode in _MODES}
    results = {}
    for _ in range(TRIALS):
        for mode, kw in _MODES.items():
            result = mobility.run(_config(**kw))
            assert result.gate_failures() == [], result.gate_failures()
            wall[mode].append(
                statistics.median(result.wall_reaction_s)
            )
            results[mode] = result
    out = {}
    for mode, medians in wall.items():
        result = results[mode]
        out[mode] = {
            "median_reaction_wall_s": round(statistics.median(medians), 6),
            "reactions": result.reactions,
            "legs_prefetched": result.legs_prefetched,
            "prefetch_hits": result.prefetch_hits,
            "prefetch_wasted": result.prefetch_wasted,
            "prefetch_hit_rate": round(result.prefetch_hit_rate, 4),
            "legs_retraced": result.legs_retraced,
            "snr_digest": result.snr_digest,
        }
    on = results["prefetch_on"]
    for mode, result in results.items():
        diff = float(
            np.max(
                np.abs(
                    np.asarray(on.snr_trace) - np.asarray(result.snr_trace)
                )
            )
        )
        out[mode]["max_abs_diff_vs_on"] = diff
    return out


def run_churn_variant():
    """Obstacle walker + churn: realistic (partial) hit rate, as data."""
    result = mobility.run(
        mobility.MobilityConfig(
            scene=SCENE,
            seed=SEED,
            steps=STEPS,
            clients=1,
            walkers=1,
            churn_rate_hz=0.4,
        )
    )
    assert result.gate_failures() == [], result.gate_failures()
    return result.summary()


def test_bench_mobility_prefetch(benchmark):
    comparison = run_once(benchmark, run_prefetch_comparison)
    churn = run_churn_variant()

    print()
    rows = [
        (
            mode,
            f"{stats['median_reaction_wall_s'] * 1e3:.1f}",
            f"{stats['prefetch_hit_rate']:.2f}",
            str(stats["legs_retraced"]),
            f"{stats['max_abs_diff_vs_on']:g}",
        )
        for mode, stats in comparison.items()
    ]
    print(
        render_table(
            ("mode", "reaction (ms)", "hit rate", "retraced", "Δ vs on"),
            rows,
            title=(
                f"Mobility prefetch: {STEPS} steps, {CLIENTS} clients, "
                f"{PANEL_SIZE}x{PANEL_SIZE} panels"
            ),
        )
    )

    on = comparison["prefetch_on"]
    off = comparison["prefetch_off"]
    cold = comparison["cold"]
    # Bit-identity: prefetch only warms a cache, it never changes outputs.
    assert off["max_abs_diff_vs_on"] == 0.0
    assert cold["max_abs_diff_vs_on"] == 0.0
    assert off["snr_digest"] == on["snr_digest"] == cold["snr_digest"]
    # Predictions are exact and endpoints are not geometry, so every
    # speculative leg is consumed.
    assert on["prefetch_hit_rate"] >= 0.5
    # The point of speculation: trace cost leaves the reaction path.
    assert (
        on["median_reaction_wall_s"] < off["median_reaction_wall_s"]
    ), "prefetch-on must beat prefetch-off reaction latency"
    assert (
        on["median_reaction_wall_s"] < cold["median_reaction_wall_s"]
    ), "prefetch-on must beat the cold baseline"

    OUTPUT.write_text(
        json.dumps(
            {
                "meta": bench_meta(
                    small=SMALL,
                    steps=STEPS,
                    trials=TRIALS,
                    scene=SCENE,
                    clients=CLIENTS,
                    panel_size=PANEL_SIZE,
                    grid_spacing_m=GRID_SPACING_M,
                    solve_iterations=SOLVE_ITERATIONS,
                ),
                "comparison": comparison,
                "churn_variant": churn,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"\nresults written to {OUTPUT}")
