"""Figure 6 — LLM translating user demands into service calls."""

from repro.experiments import fig6


def test_bench_fig6(benchmark):
    result = benchmark(fig6.run)
    print()
    print(result.render())
    # Every paper case (and extras) must translate to the expected
    # validated service calls.
    assert result.all_match
    # Both verbatim paper inputs are covered.
    inputs = [c.user_input for c in result.cases]
    assert "I want to start VR gaming in this room." in inputs
    assert (
        "I want to have an online meeting while charging my phone." in inputs
    )
