"""Figure 2 — coverage-optimal configuration disrupts localization."""

from conftest import run_once

from repro.experiments import fig2


def test_bench_fig2(benchmark):
    result = run_once(benchmark, fig2.run)
    print()
    print(result.render())
    # Coverage is genuinely delivered into the target room …
    assert result.median_rss_dbm > -70.0
    # … while localization is disrupted across the room: an order of
    # magnitude worse than what the same panel achieves with a
    # localization-friendly configuration.
    assert result.median_error_m > 5 * result.reference_error_m
    assert result.median_error_m > 0.5
    assert result.reference_error_m < 0.2
