"""Perf bench — vectorized geometry kernels vs. per-obstacle loops.

Times the batched ``segment_loss_db`` kernel against the per-obstacle
loop formulation it replaced (reimplemented privately below), plus the
end-to-end ``reoptimize()`` path with each kernel spliced in.  Results
land in ``BENCH_kernels.json`` at the repo root.

Timings use best-of-N (minimum) — this container's single shared core
makes mean timings far too noisy to compare against.

Set ``PERF_BENCH_SMALL=1`` for the CI smoke variant (smaller scene,
fewer repetitions, no speedup floor asserted).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro import SurfOS, ghz
from repro.analysis.tables import render_table
from repro.channel.geomkernels import CompiledGeometry, compiled_geometry
from repro.geometry import Box, apartment_sites, two_room_apartment
from repro.geometry.environment import Environment
from repro.geometry.materials import BRICK, CONCRETE, DRYWALL
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import Adam
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)
SMALL = bool(os.environ.get("PERF_BENCH_SMALL"))
NUM_WALLS = 8 if SMALL else 16
NUM_BOXES = 6 if SMALL else 12
NUM_SEGMENTS = 2_000 if SMALL else 12_000
KERNEL_REPS = 5 if SMALL else 12
E2E_REPS = 1 if SMALL else 2
_EPS = 1e-9

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"


# ----------------------------------------------------------------------
# the pre-vectorization per-obstacle loop, kept for comparison
# ----------------------------------------------------------------------


def _loop_wall_mask(wall, a, b):
    p, q = wall.start[:2], wall.end[:2]
    s = q - p
    r = b[:, :2] - a[:, :2]
    denom = r[:, 0] * s[1] - r[:, 1] * s[0]
    ok = np.abs(denom) > _EPS
    safe = np.where(ok, denom, 1.0)
    ap = p[None, :] - a[:, :2]
    t = (ap[:, 0] * s[1] - ap[:, 1] * s[0]) / safe
    u = (ap[:, 0] * r[:, 1] - ap[:, 1] * r[:, 0]) / safe
    z = a[:, 2] + t * (b[:, 2] - a[:, 2])
    return (
        ok
        & (t > _EPS)
        & (t < 1.0 - _EPS)
        & (u >= -_EPS)
        & (u <= 1.0 + _EPS)
        & (z >= wall.z_min - _EPS)
        & (z <= wall.z_max + _EPS)
    )


def _loop_box_mask(lo, hi, a, b):
    d = b - a
    t_enter = np.zeros(a.shape[0])
    t_exit = np.ones(a.shape[0])
    inside_slabs = np.ones(a.shape[0], dtype=bool)
    for axis in range(3):
        da = d[:, axis]
        parallel = np.abs(da) < _EPS
        safe = np.where(parallel, 1.0, da)
        t1 = (lo[axis] - a[:, axis]) / safe
        t2 = (hi[axis] - a[:, axis]) / safe
        lo_t = np.minimum(t1, t2)
        hi_t = np.maximum(t1, t2)
        in_slab = (a[:, axis] >= lo[axis] - _EPS) & (a[:, axis] <= hi[axis] + _EPS)
        inside_slabs &= np.where(parallel, in_slab, True)
        t_enter = np.where(parallel, t_enter, np.maximum(t_enter, lo_t))
        t_exit = np.where(parallel, t_exit, np.minimum(t_exit, hi_t))
    return (
        inside_slabs
        & (t_enter < t_exit)
        & (t_exit > _EPS)
        & (t_enter < 1.0 - _EPS)
    )


def _loop_segment_loss_db(
    self, a, b, frequency_hz, panels=None, exclude_wall_indices=None
):
    """Drop-in loop replacement for ``CompiledGeometry.segment_loss_db``."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    loss = np.zeros(a.shape[0])
    excluded = (
        set(np.asarray(exclude_wall_indices).tolist())
        if exclude_wall_indices is not None
        else set()
    )
    wall_losses = self.wall_losses_db(frequency_hz) if self.num_walls else None
    for j, wall in enumerate(self.walls):
        if j in excluded:
            continue
        mask = _loop_wall_mask(wall, a, b)
        if mask.any():
            loss[mask] += wall_losses[j]
    box_losses = self.box_losses_db(frequency_hz) if self.num_boxes else None
    for j in range(self.num_boxes):
        mask = _loop_box_mask(self.box_lo[j], self.box_hi[j], a, b)
        if mask.any():
            loss[mask] += box_losses[j]
    if panels is not None and panels.count:
        loss += panels.crossing_matrix(a, b) @ panels.losses_db(frequency_hz)
    return loss


# ----------------------------------------------------------------------
# scenes and timing
# ----------------------------------------------------------------------


def kernel_scene():
    rng = np.random.default_rng(7)
    env = Environment("perf-kernels", ceiling_height=3.0)
    mats = [DRYWALL, CONCRETE, BRICK]
    for i in range(NUM_WALLS):
        p = rng.uniform(0, 20, 2)
        d = rng.uniform(-6, 6, 2)
        env.add_wall_2d(p, p + d, mats[i % 3], name=f"w{i}")
    for i in range(NUM_BOXES):
        lo = rng.uniform(0, 18, 3) * np.array([1, 1, 0.1])
        size = rng.uniform(0.5, 3.0, 3)
        env.add_box(Box(lo=lo, hi=lo + size, material=mats[i % 3], name=f"b{i}"))
    a = rng.uniform(0, 20, (NUM_SEGMENTS, 3)) * np.array([1, 1, 0.15])
    b = rng.uniform(0, 20, (NUM_SEGMENTS, 3)) * np.array([1, 1, 0.15])
    return env, a, b


def best_of(fn, reps):
    """Minimum wall time over ``reps`` runs (noise-robust on shared CPUs)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernel():
    env, a, b = kernel_scene()
    compiled = compiled_geometry(env)
    ref = _loop_segment_loss_db(compiled, a, b, FREQ)
    vec = compiled.segment_loss_db(a, b, FREQ)
    max_abs_diff = float(np.abs(ref - vec).max())
    assert max_abs_diff <= 1e-9
    loop_s = best_of(lambda: _loop_segment_loss_db(compiled, a, b, FREQ), KERNEL_REPS)
    vec_s = best_of(lambda: compiled.segment_loss_db(a, b, FREQ), KERNEL_REPS)
    return {
        "num_walls": NUM_WALLS,
        "num_boxes": NUM_BOXES,
        "num_segments": NUM_SEGMENTS,
        "loop_ms": loop_s * 1e3,
        "vec_ms": vec_s * 1e3,
        "speedup": loop_s / vec_s,
        "max_abs_diff": max_abs_diff,
    }


def build_system():
    sites = apartment_sites()
    system = SurfOS(
        two_room_apartment(),
        frequency_hz=FREQ,
        optimizer=Adam(max_iterations=40),
        grid_spacing_m=1.0,
    )
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    system.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    system.boot()
    system.orchestrator.optimize_coverage("bedroom")
    system.orchestrator.enhance_link("phone", snr=25.0)
    return system


def bench_end_to_end():
    """One reoptimize() with the loop kernel spliced in, then vectorized."""
    system = build_system()

    def timed_reoptimize():
        def once():
            system.orchestrator.simulator.invalidate()
            system.reoptimize(rounds=1)

        return best_of(once, E2E_REPS)

    original = CompiledGeometry.segment_loss_db
    CompiledGeometry.segment_loss_db = _loop_segment_loss_db
    try:
        loop_s = timed_reoptimize()
    finally:
        CompiledGeometry.segment_loss_db = original
    vec_s = timed_reoptimize()
    return {
        "loop_ms": loop_s * 1e3,
        "vec_ms": vec_s * 1e3,
        "speedup": loop_s / vec_s,
    }


def run_perf_suite():
    return {
        "small_scene": SMALL,
        "kernel_segment_loss_db": bench_kernel(),
        "end_to_end_reoptimize": bench_end_to_end(),
    }


def test_bench_perf_kernels(benchmark):
    results = run_once(benchmark, run_perf_suite)
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    kernel = results["kernel_segment_loss_db"]
    e2e = results["end_to_end_reoptimize"]
    print()
    print(
        render_table(
            ("path", "loop ms", "vectorized ms", "speedup"),
            [
                (
                    f"segment_loss_db ({kernel['num_walls']}w+{kernel['num_boxes']}b, "
                    f"{kernel['num_segments']} seg)",
                    f"{kernel['loop_ms']:.2f}",
                    f"{kernel['vec_ms']:.2f}",
                    f"{kernel['speedup']:.2f}x",
                ),
                (
                    "reoptimize() end-to-end",
                    f"{e2e['loop_ms']:.1f}",
                    f"{e2e['vec_ms']:.1f}",
                    f"{e2e['speedup']:.2f}x",
                ),
            ],
            title="Perf: vectorized kernels vs per-obstacle loops",
        )
    )
    print(f"results written to {OUTPUT}")
    assert kernel["max_abs_diff"] <= 1e-9
    # Vectorization must pay for itself; the full scene targets >=3x
    # (recorded in the JSON), but the asserted floor stays conservative
    # because this host's timings swing under load.
    if not SMALL:
        assert kernel["speedup"] >= 1.5
        assert e2e["speedup"] > 1.0
