"""Perf bench — vectorized geometry kernels vs. per-obstacle loops.

Times the batched ``segment_loss_db`` kernel against the per-obstacle
loop formulation it replaced (reimplemented privately below), plus the
end-to-end ``reoptimize()`` path with each kernel spliced in.  Results
land in ``BENCH_kernels.json`` at the repo root.

Timings use best-of-N (minimum) — this container's single shared core
makes mean timings far too noisy to compare against.

Set ``PERF_BENCH_SMALL=1`` for the CI smoke variant (smaller scene,
fewer repetitions, no speedup floor asserted).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
from _meta import bench_meta
from conftest import run_once

from repro import SurfOS, ghz
from repro.analysis.tables import render_table
from repro.broker.calls import reset_request_counter
from repro.channel.geomkernels import CompiledGeometry, compiled_geometry
from repro.geometry import Box, apartment_sites, two_room_apartment
from repro.geometry.environment import Environment
from repro.geometry.materials import BRICK, CONCRETE, DRYWALL
from repro.hwmgr import AccessPoint, ClientDevice
from repro.orchestrator import RandomSearch
from repro.orchestrator.multiplex import MultiplexStrategy
from repro.orchestrator.tasks import reset_task_counter
from repro.pipeline.workers import BatchEvaluator, ProcessPoolEvaluator
from repro.surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

FREQ = ghz(28)
SMALL = bool(os.environ.get("PERF_BENCH_SMALL"))
NUM_WALLS = 8 if SMALL else 16
NUM_BOXES = 6 if SMALL else 12
NUM_SEGMENTS = 2_000 if SMALL else 12_000
KERNEL_REPS = 5 if SMALL else 12
E2E_REPS = 1 if SMALL else 3
_EPS = 1e-9

# Multi-task end-to-end scene: a cluttered office remodel of the
# two-room apartment (partition walls + furniture boxes) with one
# TIME-slotted link task per client — the slotted solve loop is where
# cross-task stacking pays.
NUM_CLIENTS = 4 if SMALL else 12
SCENE_WALLS = 12 if SMALL else 56
SCENE_BOXES = 8 if SMALL else 40
PANEL_SIDE = 8 if SMALL else 16
SOLVE_ITERATIONS = 8 if SMALL else 20
SOLVE_POPULATION = 8 if SMALL else 16
THREAD_WORKERS = 2
PROCESS_WORKERS = 1

#: Which evaluation backend carries the headline e2e speedup; CI runs
#: the smoke variant once per backend and archives both artifacts.
EVAL_BACKEND = os.environ.get("PERF_EVAL_BACKEND", "process")

OUTPUT = Path(
    os.environ.get("PERF_BENCH_OUTPUT")
    or Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
)


# ----------------------------------------------------------------------
# the pre-vectorization per-obstacle loop, kept for comparison
# ----------------------------------------------------------------------


def _loop_wall_mask(wall, a, b):
    p, q = wall.start[:2], wall.end[:2]
    s = q - p
    r = b[:, :2] - a[:, :2]
    denom = r[:, 0] * s[1] - r[:, 1] * s[0]
    ok = np.abs(denom) > _EPS
    safe = np.where(ok, denom, 1.0)
    ap = p[None, :] - a[:, :2]
    t = (ap[:, 0] * s[1] - ap[:, 1] * s[0]) / safe
    u = (ap[:, 0] * r[:, 1] - ap[:, 1] * r[:, 0]) / safe
    z = a[:, 2] + t * (b[:, 2] - a[:, 2])
    return (
        ok
        & (t > _EPS)
        & (t < 1.0 - _EPS)
        & (u >= -_EPS)
        & (u <= 1.0 + _EPS)
        & (z >= wall.z_min - _EPS)
        & (z <= wall.z_max + _EPS)
    )


def _loop_box_mask(lo, hi, a, b):
    d = b - a
    t_enter = np.zeros(a.shape[0])
    t_exit = np.ones(a.shape[0])
    inside_slabs = np.ones(a.shape[0], dtype=bool)
    for axis in range(3):
        da = d[:, axis]
        parallel = np.abs(da) < _EPS
        safe = np.where(parallel, 1.0, da)
        t1 = (lo[axis] - a[:, axis]) / safe
        t2 = (hi[axis] - a[:, axis]) / safe
        lo_t = np.minimum(t1, t2)
        hi_t = np.maximum(t1, t2)
        in_slab = (a[:, axis] >= lo[axis] - _EPS) & (a[:, axis] <= hi[axis] + _EPS)
        inside_slabs &= np.where(parallel, in_slab, True)
        t_enter = np.where(parallel, t_enter, np.maximum(t_enter, lo_t))
        t_exit = np.where(parallel, t_exit, np.minimum(t_exit, hi_t))
    return (
        inside_slabs
        & (t_enter < t_exit)
        & (t_exit > _EPS)
        & (t_enter < 1.0 - _EPS)
    )


def _loop_segment_loss_db(
    self, a, b, frequency_hz, panels=None, exclude_wall_indices=None
):
    """Drop-in loop replacement for ``CompiledGeometry.segment_loss_db``."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    loss = np.zeros(a.shape[0])
    excluded = (
        set(np.asarray(exclude_wall_indices).tolist())
        if exclude_wall_indices is not None
        else set()
    )
    wall_losses = self.wall_losses_db(frequency_hz) if self.num_walls else None
    for j, wall in enumerate(self.walls):
        if j in excluded:
            continue
        mask = _loop_wall_mask(wall, a, b)
        if mask.any():
            loss[mask] += wall_losses[j]
    box_losses = self.box_losses_db(frequency_hz) if self.num_boxes else None
    for j in range(self.num_boxes):
        mask = _loop_box_mask(self.box_lo[j], self.box_hi[j], a, b)
        if mask.any():
            loss[mask] += box_losses[j]
    if panels is not None and panels.count:
        loss += panels.crossing_matrix(a, b) @ panels.losses_db(frequency_hz)
    return loss


# ----------------------------------------------------------------------
# scenes and timing
# ----------------------------------------------------------------------


def kernel_scene():
    rng = np.random.default_rng(7)
    env = Environment("perf-kernels", ceiling_height=3.0)
    mats = [DRYWALL, CONCRETE, BRICK]
    for i in range(NUM_WALLS):
        p = rng.uniform(0, 20, 2)
        d = rng.uniform(-6, 6, 2)
        env.add_wall_2d(p, p + d, mats[i % 3], name=f"w{i}")
    for i in range(NUM_BOXES):
        lo = rng.uniform(0, 18, 3) * np.array([1, 1, 0.1])
        size = rng.uniform(0.5, 3.0, 3)
        env.add_box(Box(lo=lo, hi=lo + size, material=mats[i % 3], name=f"b{i}"))
    a = rng.uniform(0, 20, (NUM_SEGMENTS, 3)) * np.array([1, 1, 0.15])
    b = rng.uniform(0, 20, (NUM_SEGMENTS, 3)) * np.array([1, 1, 0.15])
    return env, a, b


def best_of(fn, reps):
    """Minimum wall time over ``reps`` runs (noise-robust on shared CPUs)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernel():
    env, a, b = kernel_scene()
    compiled = compiled_geometry(env)
    ref = _loop_segment_loss_db(compiled, a, b, FREQ)
    vec = compiled.segment_loss_db(a, b, FREQ)
    max_abs_diff = float(np.abs(ref - vec).max())
    assert max_abs_diff <= 1e-9
    loop_s = best_of(lambda: _loop_segment_loss_db(compiled, a, b, FREQ), KERNEL_REPS)
    vec_s = best_of(lambda: compiled.segment_loss_db(a, b, FREQ), KERNEL_REPS)
    return {
        "num_walls": NUM_WALLS,
        "num_boxes": NUM_BOXES,
        "num_segments": NUM_SEGMENTS,
        "loop_ms": loop_s * 1e3,
        "vec_ms": vec_s * 1e3,
        "speedup": loop_s / vec_s,
        "max_abs_diff": max_abs_diff,
    }


def build_multi_task_system(lockstep):
    """The cluttered multi-task scene: N TIME-slotted link tasks.

    ``lockstep=False`` is the pre-stacking serial path (one optimizer
    run per task); ``lockstep=True`` drives all tasks through the
    stacked cross-task solve.  Id counters reset so both variants see
    identical task ids — required for bit-for-bit result comparison.
    """
    reset_task_counter()
    reset_request_counter()
    sites = apartment_sites()
    env = two_room_apartment()
    rng = np.random.default_rng(5)
    mats = [DRYWALL, CONCRETE, BRICK]
    for i in range(SCENE_WALLS):
        p = rng.uniform((0.5, 0.5), (9.0, 3.5))
        d = rng.uniform(-1.5, 1.5, 2)
        env.add_wall_2d(p, p + d, mats[i % 3], name=f"partition-{i}")
    for i in range(SCENE_BOXES):
        lo = np.array([rng.uniform(0.5, 8.5), rng.uniform(0.5, 3.2), 0.0])
        size = np.array(
            [
                rng.uniform(0.4, 1.2),
                rng.uniform(0.4, 1.2),
                rng.uniform(0.5, 1.6),
            ]
        )
        env.add_box(
            Box(lo=lo, hi=lo + size, material=mats[i % 3], name=f"desk-{i}")
        )
    system = SurfOS(
        env,
        frequency_hz=FREQ,
        optimizer=RandomSearch(
            max_iterations=SOLVE_ITERATIONS,
            population=SOLVE_POPULATION,
            seed=0,
            lockstep=lockstep,
        ),
        grid_spacing_m=1.0,
    )
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, FREQ, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            PANEL_SIDE,
            PANEL_SIDE,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    crng = np.random.default_rng(11)
    for i in range(NUM_CLIENTS):
        system.add_client(
            ClientDevice(
                f"c{i}",
                (
                    float(crng.uniform(5.2, 8.0)),
                    float(crng.uniform(0.8, 3.4)),
                    1.0,
                ),
            )
        )
    system.boot()
    for i in range(NUM_CLIENTS):
        system.orchestrator.enhance_link(
            f"c{i}", strategy=MultiplexStrategy.TIME, time_fraction=0.08
        )
    return system


def _timed_reoptimize(system, evaluator=None, loop_kernel=False):
    """Best-of-N reoptimize time plus the final slot phases (for diffs)."""
    if evaluator is not None:
        system.orchestrator.optimizer.bind_evaluator(evaluator)
    original = CompiledGeometry.segment_loss_db
    if loop_kernel:
        CompiledGeometry.segment_loss_db = _loop_segment_loss_db
    try:
        best = float("inf")
        result = None
        for _ in range(E2E_REPS):
            system.orchestrator.simulator.invalidate()
            t0 = time.perf_counter()
            result = system.orchestrator.reoptimize(rounds=1, push=False)
            best = min(best, time.perf_counter() - t0)
    finally:
        CompiledGeometry.segment_loss_db = original
        system.orchestrator.optimizer.unbind_evaluator()
    phases = [
        result.slots[tid][sid].phases
        for tid in sorted(result.slots)
        for sid in sorted(result.slots[tid])
    ]
    return best, phases


def bench_end_to_end():
    """The multi-task reoptimize() under every solve/backend variant.

    Baseline: the pre-vectorization loop kernel plus one serial
    optimizer run per task.  Headline: vectorized kernels plus the
    stacked cross-task solve evaluated on the selected backend.  All
    variants must produce bit-identical slot phases.
    """
    serial_system = build_multi_task_system(lockstep=False)
    loop_s, loop_phases = _timed_reoptimize(serial_system, loop_kernel=True)
    vec_s, vec_phases = _timed_reoptimize(serial_system)

    lockstep_system = build_multi_task_system(lockstep=True)
    stacked_s, stacked_phases = _timed_reoptimize(lockstep_system)
    with BatchEvaluator(
        parallelism=THREAD_WORKERS, chunk=SOLVE_POPULATION
    ) as thread_eval:
        thread_s, thread_phases = _timed_reoptimize(
            lockstep_system, evaluator=thread_eval
        )
    with ProcessPoolEvaluator(
        parallelism=PROCESS_WORKERS, chunk=SOLVE_POPULATION
    ) as process_eval:
        process_s, process_phases = _timed_reoptimize(
            lockstep_system, evaluator=process_eval
        )

    max_abs_diff = max(
        float(np.abs(np.asarray(a) - np.asarray(b)).max())
        for variant in (loop_phases, stacked_phases, thread_phases, process_phases)
        for a, b in zip(vec_phases, variant)
    )
    backend_s = process_s if EVAL_BACKEND == "process" else thread_s
    return {
        "tasks": NUM_CLIENTS,
        "elements": PANEL_SIDE * PANEL_SIDE,
        "iterations": SOLVE_ITERATIONS,
        "population": SOLVE_POPULATION,
        "scene_walls": SCENE_WALLS,
        "scene_boxes": SCENE_BOXES,
        "backend": EVAL_BACKEND,
        "loop_ms": loop_s * 1e3,
        "vec_ms": vec_s * 1e3,
        "stacked_ms": stacked_s * 1e3,
        "thread_ms": thread_s * 1e3,
        "process_ms": process_s * 1e3,
        "speedup": loop_s / backend_s,
        "max_abs_diff": max_abs_diff,
    }


def run_perf_suite():
    e2e = bench_end_to_end()
    return {
        "small_scene": SMALL,
        "meta": bench_meta(
            backend=EVAL_BACKEND,
            thread_workers=THREAD_WORKERS,
            process_workers=PROCESS_WORKERS,
        ),
        "kernel_segment_loss_db": bench_kernel(),
        "end_to_end_reoptimize": e2e,
        "solve_stacked_vs_per_task": {
            "per_task_ms": e2e["vec_ms"],
            "stacked_ms": e2e["stacked_ms"],
            "speedup": e2e["vec_ms"] / e2e["stacked_ms"],
        },
        "solve_process_vs_thread": {
            "thread_ms": e2e["thread_ms"],
            "process_ms": e2e["process_ms"],
            "ratio": e2e["process_ms"] / e2e["thread_ms"],
        },
    }


def test_bench_perf_kernels(benchmark):
    results = run_once(benchmark, run_perf_suite)
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    kernel = results["kernel_segment_loss_db"]
    e2e = results["end_to_end_reoptimize"]
    print()
    print(
        render_table(
            ("variant", "ms", "vs baseline"),
            [
                (
                    f"kernel loop ({kernel['num_walls']}w+{kernel['num_boxes']}b, "
                    f"{kernel['num_segments']} seg)",
                    f"{kernel['loop_ms']:.2f}",
                    "1.00x",
                ),
                (
                    "kernel vectorized",
                    f"{kernel['vec_ms']:.2f}",
                    f"{kernel['speedup']:.2f}x",
                ),
                (
                    f"e2e loop kernel + per-task solve "
                    f"({e2e['tasks']} tasks)",
                    f"{e2e['loop_ms']:.1f}",
                    "1.00x",
                ),
                (
                    "e2e vec kernel + per-task solve",
                    f"{e2e['vec_ms']:.1f}",
                    f"{e2e['loop_ms'] / e2e['vec_ms']:.2f}x",
                ),
                (
                    "e2e vec kernel + stacked solve",
                    f"{e2e['stacked_ms']:.1f}",
                    f"{e2e['loop_ms'] / e2e['stacked_ms']:.2f}x",
                ),
                (
                    f"e2e stacked + thread x{THREAD_WORKERS}",
                    f"{e2e['thread_ms']:.1f}",
                    f"{e2e['loop_ms'] / e2e['thread_ms']:.2f}x",
                ),
                (
                    f"e2e stacked + process x{PROCESS_WORKERS}",
                    f"{e2e['process_ms']:.1f}",
                    f"{e2e['loop_ms'] / e2e['process_ms']:.2f}x",
                ),
            ],
            title=(
                "Perf: vectorized kernels + stacked solve vs loops "
                f"(headline backend: {e2e['backend']})"
            ),
        )
    )
    print(f"results written to {OUTPUT}")
    assert kernel["max_abs_diff"] <= 1e-9
    # Every solve/backend variant must land bit-identical slot phases —
    # the determinism contract, asserted in both bench modes.
    assert e2e["max_abs_diff"] == 0.0
    # Vectorization + stacking must pay for themselves; floors stay
    # conservative because this host's timings swing under load.
    if not SMALL:
        assert kernel["speedup"] >= 1.5
        assert e2e["speedup"] >= 2.0
