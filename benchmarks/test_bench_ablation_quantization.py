"""Ablation — phase-shifter resolution (continuous vs 2-bit vs 1-bit).

Real programmable metasurfaces quantize phases (Table 1: LAIA and
NR-Surface are 1-bit, ScatterMIMO 2-bit).  Classic array theory puts
the quantization loss at ≈3.9 dB for 1-bit and ≈0.9 dB for 2-bit; this
bench measures it end-to-end through the channel model on a
single-point focusing task.
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import render_table
from repro.core.configuration import quantize_phase
from repro.experiments import build_scenario
from repro.orchestrator import Adam
from repro.services import connectivity

PANEL_SIZE = 20


def run_quantization_sweep():
    scenario = build_scenario(grid_spacing_m=0.8)
    panel = scenario.relay_panel(PANEL_SIZE)
    # Single focal point: the cleanest read of array quantization loss.
    point = scenario.env.room("bedroom").center.copy()
    point[2] = 1.0
    model = scenario.simulator.build(scenario.ap_node(), point[None, :], [panel])
    form = model.linear_form(panel.panel_id, {})
    objective = connectivity.coverage_objective(form, budget=scenario.budget)
    rng = np.random.default_rng(0)
    result = Adam(max_iterations=150, learning_rate=0.2).optimize(
        objective, rng.uniform(0, 2 * np.pi, objective.dim)
    )
    snrs = {}
    snrs["continuous"] = float(objective.snr_db(result.phases)[0])
    for bits in (3, 2, 1):
        quantized = quantize_phase(result.phases, bits)
        snrs[f"{bits}-bit"] = float(objective.snr_db(quantized)[0])
    return snrs


def test_bench_ablation_quantization(benchmark):
    snrs = run_once(benchmark, run_quantization_sweep)
    print()
    print(
        render_table(
            ("phase resolution", "focal-point SNR (dB)", "loss vs continuous (dB)"),
            [
                (name, f"{snr:.1f}", f"{snrs['continuous'] - snr:.2f}")
                for name, snr in snrs.items()
            ],
            title="Ablation: phase quantization loss",
        )
    )
    # Monotone degradation with coarser phases.
    assert snrs["continuous"] >= snrs["3-bit"] >= snrs["2-bit"] >= snrs["1-bit"]
    # Textbook quantization losses, with slack for the channel model:
    # 2-bit ≈ 0.9 dB, 1-bit ≈ 3.9 dB.
    assert snrs["continuous"] - snrs["2-bit"] < 2.5
    assert 1.5 < snrs["continuous"] - snrs["1-bit"] < 7.0
